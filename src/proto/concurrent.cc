#include "concurrent.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mscp::proto
{

#ifdef MSCP_FAULT_SEAM
/**
 * Deliberate-bug seam for the model-checker test matrix: when set,
 * a DW-mode owner serving a read forward "forgets" to register the
 * reader in its present vector, so a later distributed write skips
 * that copy and the reader can observe a stale value. Only compiled
 * into test binaries that #define MSCP_FAULT_SEAM and #include this
 * translation unit; the production object never defines the macro
 * and is byte-identical to a build without the seam.
 */
bool g_faultSeam = false;
/**
 * Deliberate-livelock seam for the liveness checker: when set, an
 * owner NACKs every direct pointer-bypass read it could serve, and
 * the nacked requester does not advance its pointer-retry counter
 * -- so a reader holding a stale-but-correct owner hint ping-pongs
 * LoadReq/NackNotOwner forever without making progress. Every
 * message of the cycle is delivered (the cycle is weakly fair), so
 * this is a genuine livelock, not a starved schedule.
 */
bool g_livelockSeam = false;
#endif

using cache::Mode;
using cache::State;

ConcurrentProtocol::ConcurrentProtocol(net::OmegaNetwork &network,
                                       ConcurrentParams p)
    : params(p), net(network),
      timedNet(network, eq, p.linkWidthBits, p.hopLatency),
      injector(p.faultPlan, p.crashPlan), retryRng(p.jitterSeed),
      _tracer(p.traceCapacity), mx(registerMetrics()),
      msampler(mx, p.metricsWindow, p.metricsCapacity)
{
    params.geometry.check();
    // Self-gating: a disabled plan detaches and the delivery path
    // is byte-identical to a build without injection.
    timedNet.setFaultInjector(&injector);
    // Tracing is switched on explicitly or piggybacks on an armed
    // watchdog (so deadlock reports always carry history). The
    // queue and network tracers stay detached otherwise, keeping
    // their untraced paths to a single branch.
    if (traceCompiledIn() &&
        (params.traceEnabled || params.watchdogPeriod > 0)) {
        _tracer.setEnabled(true);
        // When the tracer rides along only as the watchdog's
        // history buffer, ring overwrite is its designed steady
        // state - don't warn about it.
        _tracer.setOverflowWarn(params.traceEnabled);
        eq.setTracer(&_tracer);
        timedNet.setTracer(&_tracer);
    }
    // Metrics follow the same attach discipline as the tracer: the
    // sampler and the network's heatmap hooks are only installed
    // while enabled, so a metrics-off run pays one branch per call
    // site and is byte-identical in results and output.
    if (metricsCompiledIn() && params.metricsEnabled) {
        mx.setEnabled(true);
        msampler.setProbe([this] { metricsProbe(); });
        msampler.arm();
        if (msampler.armed()) {
            eq.setMetricsSampler(&msampler);
            timedNet.setMetrics(&mx, mid.net);
        }
    }
    unsigned n = network.numPorts();
    cpus.reserve(n);
    homes.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        cpus.emplace_back(params.geometry, n);
        homes.emplace_back(static_cast<NodeId>(i),
                           params.geometry.blockWords);
    }
    deadNodes = DynamicBitset(n);
}

const MetricsRegistry &
ConcurrentProtocol::registerMetrics()
{
    const auto levels = net.topology().numLinkLevels();
    const auto ports = net.numPorts();
    mid.net.linkWait = mreg.grid("net.link_wait", levels, ports);
    mid.net.linkBusy = mreg.grid("net.link_busy", levels, ports);
    mid.net.fanout = mreg.histogram("net.fanout");
    mid.evqDepth = mreg.gauge("evq.depth");
    mid.evqTombstones = mreg.gauge("evq.tombstones");
    mid.refsOutstanding = mreg.gauge("proto.refs_outstanding");
    mid.refsDone = mreg.counter("proto.refs_done");
    mid.retries = mreg.counter("proto.retries");
    mid.timeouts = mreg.counter("proto.timeouts");
    mid.retryBackoff = mreg.histogram("proto.retry_backoff");
    mid.dirEntries = mreg.gauge("dir.entries");
    mid.busyBlocks = mreg.gauge("dir.busy_blocks");
    mid.homeOccupancy = mreg.histogram("dir.occupancy");
    mid.recoveringBlocks = mreg.gauge("recovery.blocks");
    mid.rebuilds = mreg.counter("recovery.rebuilds");
    mid.faultDropped = mreg.counter("fault.dropped");
    mid.faultDuplicated = mreg.counter("fault.duplicated");
    mid.faultDelayed = mreg.counter("fault.delayed");
    mid.crashMasked = mreg.counter("fault.crash_masked");
    return mreg;
}

void
ConcurrentProtocol::metricsProbe()
{
    mx.set(mid.evqDepth, eq.size());
    mx.set(mid.evqTombstones, eq.tombstoneSlots());
    mx.set(mid.refsOutstanding, refsOutstanding);
    mx.set(mid.refsDone, readsDone + writesDone);
    mx.set(mid.retries, ctrs.retries);
    mx.set(mid.timeouts, ctrs.timeouts);
    mx.set(mid.rebuilds, ctrs.rebuilds);
    std::uint64_t entries = 0, busy = 0, recovering = 0;
    for (const HomeState &h : homes) {
        entries += h.mem.blockStore().size();
        busy += h.busy.size();
        recovering += h.recovering.size();
        mx.sample(mid.homeOccupancy, h.busy.size());
    }
    mx.set(mid.dirEntries, entries);
    mx.set(mid.busyBlocks, busy);
    mx.set(mid.recoveringBlocks, recovering);
    const FaultCounters &fc = injector.counters();
    mx.set(mid.faultDropped, fc.totalDropped());
    mx.set(mid.faultDuplicated, fc.totalDuplicated());
    mx.set(mid.faultDelayed, fc.totalDelayed());
    mx.set(mid.crashMasked, fc.totalCrashMasked());
}

ConcurrentProtocol::~ConcurrentProtocol() = default;

cache::Entry *
ConcurrentProtocol::findEntry(NodeId cpu, BlockId blk)
{
    return cpus[cpu].array.find(blk);
}

const std::vector<NodeId> &
ConcurrentProtocol::othersPresent(const Entry &e, NodeId self)
{
    presentScratch.clear();
    const DynamicBitset &p = e.field.present;
    for (std::size_t i = p.findFirst(); i < p.size();
         i = p.findNext(i)) {
        if (i != self)
            presentScratch.push_back(static_cast<NodeId>(i));
    }
    return presentScratch;
}

void
ConcurrentProtocol::maybeExclusive(Entry &e, NodeId self)
{
    if (e.field.present.count() == 1 && e.field.present.test(self)) {
        e.field.state = cache::ownedState(
            cache::modeOf(e.field.state), true);
    }
}

FaultClass
ConcurrentProtocol::classOf(MsgType t)
{
    switch (t) {
      case MsgType::LoadReq:
      case MsgType::LoadOwnReq:
      case MsgType::OwnReq:
      case MsgType::EvictReq:
        return FaultClass::Request;
      case MsgType::LoadFwd:
      case MsgType::LoadOwnFwd:
      case MsgType::OwnFwd:
      case MsgType::PresentClear:
        return FaultClass::Forward;
      case MsgType::DataBlock:
      case MsgType::Datum:
      case MsgType::StateXfer:
      case MsgType::StateCopyXfer:
      case MsgType::EvictAck:
        return FaultClass::Reply;
      case MsgType::DwAck:
      case MsgType::InvalAck:
      case MsgType::OfferAck:
      case MsgType::OfferNack:
      case MsgType::PresentClearAck:
      case MsgType::NackNotOwner:
        return FaultClass::Ack;
      case MsgType::SuspectOwner:
      case MsgType::RecoveryPurge:
      case MsgType::RecoveryAck:
      case MsgType::RecoveryNack:
      case MsgType::DurableWrite:
        return FaultClass::Recovery;
      default:
        return FaultClass::Control;
    }
}

const char *
ConcurrentProtocol::phaseName(Phase p)
{
    switch (p) {
      case Phase::Idle: return "Idle";
      case Phase::WaitHome: return "WaitHome";
      case Phase::WaitPointer: return "WaitPointer";
      case Phase::WaitOwnXfer: return "WaitOwnXfer";
      case Phase::WaitDwAcks: return "WaitDwAcks";
      case Phase::WaitEvictAck: return "WaitEvictAck";
      case Phase::WaitOffer: return "WaitOffer";
      case Phase::WaitInvalAcks: return "WaitInvalAcks";
      case Phase::Commit: return "Commit";
    }
    return "?";
}

Bits
ConcurrentProtocol::payloadBits(const Msg &m) const
{
    unsigned n = numCaches();
    unsigned bw = params.geometry.blockWords;
    switch (m.type) {
      case MsgType::DataBlock:
      case MsgType::WriteBack:
        return params.sizes.blockPayload(bw);
      case MsgType::Datum:
        return params.sizes.wordBits +
            params.sizes.ownerIdPayload(n);
      case MsgType::StateXfer:
        return params.sizes.statePayload(n);
      case MsgType::StateCopyXfer:
        return params.sizes.statePayload(n) +
            params.sizes.blockPayload(bw);
      case MsgType::DwUpdate:
        return params.sizes.wordBits;
      case MsgType::OwnerAnnounce:
        return params.sizes.ownerIdPayload(n);
      case MsgType::EvictDone:
      case MsgType::RecoveryAck:
        return m.data.empty()
            ? 0 : params.sizes.blockPayload(bw);
      case MsgType::DurableWrite:
        return params.sizes.wordBits;
      default:
        return 0;
    }
}

std::uint32_t
ConcurrentProtocol::allocSlot(Msg &&m)
{
    if (freeSlot != NoSlot) {
        std::uint32_t slot = freeSlot;
        MsgSlot &s = msgSlab[slot];
        freeSlot = s.nextFree;
        s.msg = std::move(m);
        s.refs = 0;
        return slot;
    }
    std::uint32_t slot = static_cast<std::uint32_t>(msgSlab.size());
    msgSlab.emplace_back();
    msgSlab.back().msg = std::move(m);
    return slot;
}

void
ConcurrentProtocol::releaseSlot(std::uint32_t slot)
{
    MsgSlot &s = msgSlab[slot];
    s.refs = 0;
    s.nextFree = freeSlot;
    freeSlot = slot;
}

void
ConcurrentProtocol::deliverSlot(std::uint32_t slot, NodeId dst)
{
    // deliver() can send further messages and grow the slab, so the
    // message is taken out of the slot (moved on the last delivery,
    // copied before that) before the handler runs.
    MsgSlot &s = msgSlab[slot];
    s.msg.dst = dst;
    if (s.refs <= 1) {
        Msg local = std::move(s.msg);
        releaseSlot(slot);
        deliver(local);
    } else {
        --s.refs;
        Msg local = s.msg;
        deliver(local);
    }
}

void
ConcurrentProtocol::vBuffer(Msg m)
{
    if (vDedupSends) {
        auto same = [&m](const VerifyPending &p) {
            const Msg &q = p.msg;
            return q.type == m.type && q.src == m.src &&
                   q.dst == m.dst && q.toMemory == m.toMemory &&
                   q.blk == m.blk && q.requester == m.requester &&
                   q.offset == m.offset && q.value == m.value &&
                   q.seq == m.seq && q.tok == m.tok &&
                   q.flag == m.flag &&
                   q.field.state == m.field.state &&
                   q.field.modified == m.field.modified &&
                   q.field.owner == m.field.owner &&
                   q.field.present == m.field.present &&
                   q.data == m.data;
        };
        for (const VerifyPending &p : vPending) {
            if (p.srcIsMem == vMemSend && same(p))
                return; // verbatim copy already in flight: fold
        }
    }
    vPending.push_back({std::move(m), vMemSend});
}

void
ConcurrentProtocol::scheduleLocal(Msg m, Tick delay)
{
    if (vControlled) {
        vBuffer(std::move(m));
        return;
    }
    NodeId dst = m.dst;
    std::uint32_t slot = allocSlot(std::move(m));
    msgSlab[slot].refs = 1;
    eq.scheduleIn([this, slot, dst] { deliverSlot(slot, dst); },
                  delay);
}

void
ConcurrentProtocol::send(Msg m)
{
    Bits total = params.sizes.control() + payloadBits(m);
    msgs.record(m.type, total);
    trace(TraceEvent::Send, m.src, m.dst,
          static_cast<std::uint8_t>(m.type), m.seq, m.blk);
    if (vControlled) {
        // Delivery order is the explorer's choice, not the
        // network's: park the message until an action picks it.
        vBuffer(std::move(m));
        return;
    }
    if (m.src == m.dst) {
        // Co-located processor-memory element: local exchange.
        scheduleLocal(std::move(m), 1);
        return;
    }
    NodeId src = m.src;
    NodeId dst = m.dst;
    injector.setMessageClass(classOf(m.type), m.toMemory);
    std::uint32_t slot = allocSlot(std::move(m));
    timedNet.sendUnicast(src, dst, total,
                         [this, slot](NodeId d, Tick) {
                             deliverSlot(slot, d);
                         });
    // Deliveries fire strictly after send() returns, so the
    // refcount can be installed from the network's tally. Injected
    // drops can eat every delivery; reclaim the slot then or it
    // would leak for the rest of the run.
    std::uint32_t refs =
        static_cast<std::uint32_t>(timedNet.lastDeliveries());
    if (refs == 0) {
        releaseSlot(slot);
        return;
    }
    msgSlab[slot].refs = refs;
}

void
ConcurrentProtocol::sendMulticastMsg(MsgType t, NodeId src,
                                     const std::vector<NodeId> &
                                         dests,
                                     Bits payload, BlockId blk,
                                     unsigned offset,
                                     std::uint64_t value,
                                     NodeId aux_owner)
{
    if (dests.empty())
        return;
    Bits total = params.sizes.control() + payload;
    msgs.record(t, total);
    // node2 carries the destination count for multicasts.
    trace(TraceEvent::Send, src,
          static_cast<NodeId>(dests.size()),
          static_cast<std::uint8_t>(t), 0, blk);
    Msg proto_msg;
    proto_msg.type = t;
    proto_msg.src = src;
    proto_msg.toMemory = false;
    proto_msg.blk = blk;
    proto_msg.offset = offset;
    proto_msg.value = value;
    proto_msg.requester = aux_owner;
    if (vControlled) {
        // One pending entry per requested destination. Scheme-3
        // subcube overshoot is not modeled: overshoot deliveries
        // are ignored by every handler, so the explored behavior
        // is that of an exact multicast.
        for (NodeId d : dests) {
            Msg copy = proto_msg;
            copy.dst = d;
            vBuffer(std::move(copy));
        }
        return;
    }
    injector.setMessageClass(classOf(t));
    std::uint32_t slot = allocSlot(std::move(proto_msg));
    timedNet.sendMulticast(
        params.multicastScheme, src, dests, total,
        [this, slot](NodeId dst, Tick) {
            deliverSlot(slot, dst);
        });
    // Scheme 3 can deliver to more ports than requested (subcube
    // overshoot); the network reports the exact count. Zero means
    // every delivery was dropped by the injector: reclaim the slot.
    std::uint32_t refs =
        static_cast<std::uint32_t>(timedNet.lastDeliveries());
    if (refs == 0) {
        releaseSlot(slot);
        return;
    }
    msgSlab[slot].refs = refs;
}

void
ConcurrentProtocol::deliver(const Msg &m)
{
    DPRINTF("Concurrent", "t=%llu %s %u->%u blk=%llu req=%u "
            "off=%u val=%llu flag=%d %s",
            static_cast<unsigned long long>(eq.curTick()),
            msgTypeName(m.type), m.src, m.dst,
            static_cast<unsigned long long>(m.blk), m.requester,
            m.offset, static_cast<unsigned long long>(m.value),
            m.flag, m.toMemory ? "mem" : "cache");
    trace(TraceEvent::Deliver, m.src, m.dst,
          static_cast<std::uint8_t>(m.type), m.seq, m.blk);
    if (_aborted)
        return; // watchdog fired: freeze state, let the queue drain
    if (!m.toMemory && deadNodes.test(m.dst)) {
        // Local-path dead-node sink (network deliveries are sunk by
        // the injector before they are scheduled): a crashed cache
        // neither receives nor acknowledges. Memory-bound messages
        // pass - the co-located module survives its cache.
        injector.recordCrashMasked(classOf(m.type));
        trace(TraceEvent::CrashMask, m.dst, m.src,
              static_cast<std::uint8_t>(m.type), m.seq, m.blk);
        return;
    }
    if (m.toMemory) {
        // Messages sent while a home handler runs carry the memory
        // src role (see VerifyPending::srcIsMem); inert otherwise.
        bool saved = vMemSend;
        vMemSend = true;
        handleMemMsg(m);
        vMemSend = saved;
    } else {
        handleCacheMsg(m);
    }
}

// ---------------------------------------------------------------
// CPU side
// ---------------------------------------------------------------

void
ConcurrentProtocol::issueNext(NodeId cpu)
{
    CpuState &cs = cpus[cpu];
    if (_aborted || cs.active || cs.queue.empty() ||
        deadNodes.test(cpu))
        return;
    cs.ref = cs.queue.front();
    cs.queue.pop_front();
    cs.active = true;
    cs.issueTick = eq.curTick();
    cs.attempts = 0;
    DPRINTF("Concurrent", "t=%llu cpu%u issues %c @%llu val=%llu",
            static_cast<unsigned long long>(eq.curTick()), cpu,
            cs.ref.isWrite ? 'W' : 'R',
            static_cast<unsigned long long>(cs.ref.addr),
            static_cast<unsigned long long>(cs.ref.value));
    cs.phase = Phase::Idle;
    cs.pointerRetries = 0;
    if (cs.ref.isWrite) {
        ++ctrs.writes;
        monitorWritePending(cs.ref.addr, cs.ref.value);
    } else {
        ++ctrs.reads;
    }
    cs.opId = ++cs.opGen;
    if (vControlled)
        vObsLog.push_back({cpu, /*invoke=*/true, cs.ref.isWrite,
                           cs.ref.addr, cs.ref.value});
    cs.opClass = cs.ref.isWrite ? OpClass::WriteMiss
        : OpClass::ReadMiss;
    trace(TraceEvent::Issue, cpu, cpu,
          static_cast<std::uint8_t>(cs.opClass), cs.opId,
          params.geometry.blockOf(cs.ref.addr));
    startAccess(cpu);
}

void
ConcurrentProtocol::completeRef(NodeId cpu)
{
    CpuState &cs = cpus[cpu];
    if (crashEnabled() && !cs.active) {
        // The cpu crashed between scheduling this completion and
        // now; the reference was already accounted as lost.
        return;
    }
    panic_if(!cs.active, "completing an idle cpu");
    Tick latency = eq.curTick() - cs.issueTick;
    if (latSink)
        latSink(cs.opClass, latency);
    trace(TraceEvent::Complete, cpu, cpu,
          static_cast<std::uint8_t>(cs.opClass), cs.opId, latency);
    if (cs.ref.isWrite) {
        monitorWriteComplete(cs.ref.addr, cs.ref.value);
        writeLatSum += static_cast<double>(latency);
        ++writesDone;
    } else {
        readLatSum += static_cast<double>(latency);
        ++readsDone;
    }
    if (vControlled)
        vObsLog.push_back({cpu, /*invoke=*/false, cs.ref.isWrite,
                           cs.ref.addr,
                           cs.ref.isWrite ? cs.ref.value
                                          : cs.vSample});
    cs.pinnedTx.erase(params.geometry.blockOf(cs.ref.addr));
    cs.purged.erase(params.geometry.blockOf(cs.ref.addr));
    cs.active = false;
    cs.phase = Phase::Idle;
    cs.vCommitPending = false;
    disarmTimeout(cpu);
    --refsOutstanding;
    if (refsOutstanding == 0 && watchdogArmed) {
        // Keep the makespan clean: no trailing watchdog scans.
        eq.deschedule(watchdogEv);
        watchdogArmed = false;
    }
    if (vControlled)
        return; // the next reference issues as an explorer action
    eq.scheduleIn([this, cpu] { issueNext(cpu); },
                  params.thinkTime + 1);
}

void
ConcurrentProtocol::startAccess(NodeId cpu)
{
    if (_aborted)
        return; // stop the defer/retry loops so the queue drains
    CpuState &cs = cpus[cpu];
    if (!cs.active)
        return; // a crash cut the transaction out from under us
    BlockId blk = params.geometry.blockOf(cs.ref.addr);
    unsigned off = params.geometry.offsetOf(cs.ref.addr);

    if (cs.clearPending.contains(blk)) {
        // A PresentClear for this block is still in flight; do not
        // re-register at the owner until it is acknowledged (the
        // clear could bounce via a NACK re-forward and erase the
        // fresh registration).
        if (vControlled) {
            cs.vDeferred = true; // retried by an explorer action
            return;
        }
        eq.scheduleIn([this, cpu] { startAccess(cpu); }, 20);
        return;
    }
    Entry *e = findEntry(cpu, blk);

    if (!cs.ref.isWrite) {
        if (e && cache::isValid(e->field.state)) {
            ++ctrs.readHits;
            cs.array.touch(*e);
            cs.vSample = e->data[off];
            checkReadSample(cs.ref.addr, e->data[off]);
            cs.opClass = OpClass::ReadHit;
            cs.phase = Phase::Commit;
            trace(TraceEvent::Commit, cpu, cpu,
                  static_cast<std::uint8_t>(cs.opClass), cs.opId, 0);
            if (vControlled) {
                // Completion is a separate action so the explorer
                // covers the Commit-window dup races.
                cs.vCommitPending = true;
                return;
            }
            eq.scheduleIn([this, cpu] { completeRef(cpu); },
                          params.hitLatency);
            return;
        }
        if (e && e->field.owner != invalidNode &&
            cs.pointerRetries < 2) {
            // OWNER-pointer bypass; may race and be NACKed. After
            // two races the transaction falls back to the home.
            ++ctrs.pointerReads;
            cs.pinnedTx.insert(blk);
            cs.phase = Phase::WaitPointer;
            Msg m;
            m.type = MsgType::LoadReq;
            m.src = cpu;
            m.dst = e->field.owner;
            m.blk = blk;
            m.offset = off;
            m.requester = cpu;
            m.seq = cs.txSeq = ++cs.seqGen;
            cs.lastReq = m;
            send(m);
            armTimeout(cpu);
            return;
        }
        if (!allocateForMiss(cpu, blk))
            return; // eviction or retry in progress
        beginMissRequest(cpu, blk);
        return;
    }

    if (e && cache::isValid(e->field.state)) {
        cs.array.touch(*e);
        if (cache::isOwned(e->field.state)) {
            ++ctrs.writeHits;
            cs.opClass = OpClass::WriteHit;
            performOwnedWrite(cpu);
            return;
        }
        // UnOwned: acquire ownership through the home.
        cs.opClass = OpClass::Upgrade;
        cs.pinnedTx.insert(blk);
        cs.phase = Phase::WaitOwnXfer;
        Msg m;
        m.type = MsgType::OwnReq;
        m.src = cpu;
        m.dst = homeOf(blk);
        m.toMemory = true;
        m.blk = blk;
        m.requester = cpu;
        m.seq = cs.txSeq = ++cs.seqGen;
        cs.lastReq = m;
        send(m);
        armTimeout(cpu);
        return;
    }
    if (!allocateForMiss(cpu, blk))
        return;
    beginMissRequest(cpu, blk);
}

void
ConcurrentProtocol::performOwnedWrite(NodeId cpu)
{
    CpuState &cs = cpus[cpu];
    BlockId blk = params.geometry.blockOf(cs.ref.addr);
    unsigned off = params.geometry.offsetOf(cs.ref.addr);
    Entry *e = findEntry(cpu, blk);
    panic_if(!e || !cache::isOwned(e->field.state),
             "owned write without ownership");

    e->data[off] = cs.ref.value;
    e->field.modified = true;

    if (crashEnabled()) {
        // Write-through under a crash plan: a committed write must
        // survive the writer's own crash, because the memory copy
        // is the root a reconstruction rebuilds from. The send-tick
        // stamp keeps a delayed older word from clobbering a newer
        // one at the home (ownership hand-offs order the stamps
        // causally).
        ++ctrs.durableWrites;
        Msg dw;
        dw.type = MsgType::DurableWrite;
        dw.src = cpu;
        dw.dst = homeOf(blk);
        dw.toMemory = true;
        dw.blk = blk;
        dw.offset = off;
        dw.value = cs.ref.value;
        dw.requester = cpu;
        dw.seq = eq.curTick();
        send(dw);
    }

    if (e->field.state == State::OwnedNonExclDW) {
        const auto &dests = othersPresent(*e, cpu);
        if (!dests.empty()) {
            ++ctrs.dwUpdates;
            cs.ackFrom.clear();
            for (NodeId d : dests)
                cs.ackFrom.set(d);
            cs.pendingAcks = static_cast<unsigned>(dests.size());
            cs.pinnedTx.insert(blk);
            cs.phase = Phase::WaitDwAcks;
            sendMulticastMsg(MsgType::DwUpdate, cpu, dests,
                             params.sizes.wordBits, blk, off,
                             cs.ref.value, cpu);
            armTimeout(cpu);
            return;
        }
    }
    cs.phase = Phase::Commit;
    trace(TraceEvent::Commit, cpu, cpu,
          static_cast<std::uint8_t>(cs.opClass), cs.opId, 0);
    if (vControlled) {
        cs.vCommitPending = true;
        return;
    }
    eq.scheduleIn([this, cpu] { completeRef(cpu); },
                  params.hitLatency);
}

bool
ConcurrentProtocol::allocateForMiss(NodeId cpu, BlockId blk)
{
    CpuState &cs = cpus[cpu];
    if (Entry *e = cs.array.find(blk)) {
        cs.array.touch(*e);
        cs.pinnedTx.insert(blk);
        return true;
    }
    Entry *victim = cs.array.pickVictimFiltered(
        blk, [&cs](const Entry &e) {
            return !cs.isPinned(e.block);
        });
    if (!victim) {
        // Every way pinned by in-flight work: retry shortly.
        if (vControlled) {
            cs.vDeferred = true;
            return false;
        }
        eq.scheduleIn([this, cpu] { startAccess(cpu); }, 10);
        return false;
    }
    if (!victim->occupied) {
        cs.array.install(*victim, blk);
        cs.pinnedTx.insert(blk);
        return true;
    }

    // Eviction needed.
    ++ctrs.evictions;
    cs.evicting = true;
    cs.victimBlk = victim->block;
    switch (victim->field.state) {
      case State::UnOwned:
      case State::Invalid: {
        // Fire-and-forget present-flag clear via the home.
        Msg m;
        m.type = MsgType::PresentClear;
        m.src = cpu;
        m.dst = homeOf(cs.victimBlk);
        m.toMemory = true;
        m.blk = cs.victimBlk;
        m.requester = cpu;
        send(m);
        cs.clearPending.insert(cs.victimBlk);
        cs.array.evict(*victim);
        cs.evicting = false;
        cs.array.install(*cs.array.pickVictim(blk), blk);
        cs.pinnedTx.insert(blk);
        return true;
      }
      default: {
        // Owned victim: serialize the eviction with the home.
        cs.phase = Phase::WaitEvictAck;
        cs.evictStartTick = eq.curTick();
        trace(TraceEvent::EvictStart, cpu, homeOf(cs.victimBlk), 0,
              cs.opId, cs.victimBlk);
        Msg m;
        m.type = MsgType::EvictReq;
        m.src = cpu;
        m.dst = homeOf(cs.victimBlk);
        m.toMemory = true;
        m.blk = cs.victimBlk;
        m.requester = cpu;
        m.seq = cs.txSeq = ++cs.seqGen;
        cs.lastReq = m;
        send(m);
        armTimeout(cpu);
        return false;
      }
    }
}

void
ConcurrentProtocol::beginMissRequest(NodeId cpu, BlockId blk)
{
    CpuState &cs = cpus[cpu];
    cs.phase = Phase::WaitHome;
    Msg m;
    m.type = cs.ref.isWrite ? MsgType::LoadOwnReq
        : MsgType::LoadReq;
    m.src = cpu;
    m.dst = homeOf(blk);
    m.toMemory = true;
    m.blk = blk;
    m.offset = params.geometry.offsetOf(cs.ref.addr);
    m.requester = cpu;
    m.seq = cs.txSeq = ++cs.seqGen;
    cs.lastReq = m;
    send(m);
    armTimeout(cpu);
}

void
ConcurrentProtocol::endEviction(NodeId cpu)
{
    CpuState &cs = cpus[cpu];
    Tick lat = eq.curTick() - cs.evictStartTick;
    if (latSink)
        latSink(OpClass::Eviction, lat);
    trace(TraceEvent::EvictEnd, cpu, cpu,
          static_cast<std::uint8_t>(OpClass::Eviction), cs.opId,
          lat);
}

void
ConcurrentProtocol::continueEviction(NodeId cpu)
{
    CpuState &cs = cpus[cpu];
    Entry *ve = findEntry(cpu, cs.victimBlk);
    if (!ve) {
        // The victim was invalidated while the eviction waited in
        // the home's queue (an all-nack fallback elsewhere):
        // nothing to hand over, just release the busy period.
        Msg m;
        m.type = MsgType::EvictDone;
        m.src = cpu;
        m.dst = homeOf(cs.victimBlk);
        m.toMemory = true;
        m.blk = cs.victimBlk;
        m.tok = cs.evictToken;
        m.flag = false;
        send(m);
        endEviction(cpu);
        cs.evicting = false;
        cs.phase = Phase::Idle;
        startAccess(cpu);
        return;
    }

    switch (ve->field.state) {
      case State::OwnedExclDW:
      case State::OwnedExclGR:
        finishEviction(cpu, true, ve->field.modified);
        break;
      case State::OwnedNonExclDW:
      case State::OwnedNonExclGR:
        ++ctrs.handoffs;
        cs.candidates = othersPresent(*ve, cpu);
        cs.candIdx = 0;
        cs.phase = Phase::WaitOffer;
        sendNextOffer(cpu);
        break;
      default: {
        // Lost ownership while the eviction was queued: the entry
        // is now UnOwned/Invalid; release the busy and notify.
        Msg pc;
        pc.type = MsgType::PresentClear;
        pc.src = cpu;
        pc.dst = homeOf(cs.victimBlk);
        pc.toMemory = true;
        pc.blk = cs.victimBlk;
        pc.requester = cpu;
        send(pc);
        cs.clearPending.insert(cs.victimBlk);
        finishEviction(cpu, false, false);
        break;
      }
    }
}

void
ConcurrentProtocol::sendNextOffer(NodeId cpu)
{
    CpuState &cs = cpus[cpu];
    Entry *ve = findEntry(cpu, cs.victimBlk);
    panic_if(!ve, "offer for a vanished victim");

    if (crashEnabled()) {
        // Never offer ownership to a dead node: the offer would
        // sink and the hand-off would spin on timeouts.
        while (cs.candIdx < cs.candidates.size() &&
               deadNodes.test(cs.candidates[cs.candIdx]))
            ++cs.candIdx;
    }

    if (cs.candIdx >= cs.candidates.size()) {
        // Everyone declined: invalidate the remaining copies, then
        // write back and clear the block store (terminal rule).
        const auto &dests = othersPresent(*ve, cpu);
        if (dests.empty()) {
            finishEviction(cpu, true, ve->field.modified);
            return;
        }
        ++ctrs.handoffFallbacks;
        cs.ackFrom.clear();
        for (NodeId d : dests)
            cs.ackFrom.set(d);
        cs.pendingAcks = static_cast<unsigned>(dests.size());
        cs.phase = Phase::WaitInvalAcks;
        sendMulticastMsg(MsgType::Invalidate, cpu, dests, 0,
                         cs.victimBlk, 0, 0, cpu);
        armTimeout(cpu);
        return;
    }

    Msg m;
    m.type = MsgType::OfferOwner;
    m.src = cpu;
    m.dst = cs.candidates[cs.candIdx];
    m.blk = cs.victimBlk;
    m.requester = cpu;
    send(m);
    armTimeout(cpu);
}

void
ConcurrentProtocol::finishEviction(NodeId cpu, bool clear_owner,
                                   bool write_back)
{
    CpuState &cs = cpus[cpu];
    Entry *ve = findEntry(cpu, cs.victimBlk);
    panic_if(!ve, "finishing eviction without a victim");

    Msg m;
    m.type = MsgType::EvictDone;
    m.src = cpu;
    m.dst = homeOf(cs.victimBlk);
    m.toMemory = true;
    m.blk = cs.victimBlk;
    m.tok = cs.evictToken;
    m.flag = clear_owner;
    if (write_back) {
        m.data = ve->data;
        ++ctrs.writeBacks;
    }
    if (crashEnabled()) {
        // Stamp the write-back so it cannot clobber a fresher
        // durable word at the home (see applyDurableWord).
        m.seq = eq.curTick();
    }
    send(m);

    cs.array.evict(*ve);
    endEviction(cpu);
    cs.evicting = false;
    cs.phase = Phase::Idle;
    // Resume the original access from scratch.
    startAccess(cpu);
}

// ---------------------------------------------------------------
// Cache-side handlers
// ---------------------------------------------------------------

void
ConcurrentProtocol::serveForward(const Msg &m)
{
    // LoadFwd / LoadOwnFwd / OwnFwd arriving at the current owner.
    NodeId me = m.dst;
    CpuState &cs = cpus[me];
    NodeId r = m.requester;
    Entry *e = findEntry(me, m.blk);

    if (crashEnabled() && deadNodes.test(r)) {
        // The requester died while its forward was in flight.
        // Serving would re-register its present bit (or worse,
        // transfer ownership into the void); sink the forward and
        // let the home's dead-releaser sweep reclaim any busy
        // period the request holds.
        return;
    }

    if (r == me) {
        // Either the requester became owner while its request was
        // queued (hand-off overtook it), or a superseded retry of
        // an already-settled request drained behind us. Only the
        // former completes the transaction; the latter just has to
        // release the busy period it holds.
        bool mine = cs.active && m.seq == cs.txSeq &&
            params.geometry.blockOf(cs.ref.addr) == m.blk &&
            (cs.phase == Phase::WaitHome ||
             cs.phase == Phase::WaitOwnXfer) &&
            (m.type == MsgType::LoadFwd) == !cs.ref.isWrite;
        if (!mine || !e || !cache::isOwned(e->field.state)) {
            ++ctrs.staleForwards;
            if (m.flag) {
                Msg ub;
                ub.type = MsgType::Unblock;
                ub.src = me;
                ub.dst = homeOf(m.blk);
                ub.toMemory = true;
                ub.blk = m.blk;
                ub.requester = me;
                ub.tok = m.tok;
                ub.flag = false;
                send(ub);
            }
            return;
        }
        ++ctrs.selfForwards;
        disarmTimeout(me);
        if (m.flag) {
            Msg ub;
            ub.type = MsgType::Unblock;
            ub.src = me;
            ub.dst = homeOf(m.blk);
            ub.toMemory = true;
            ub.blk = m.blk;
            ub.requester = me;
            ub.tok = m.tok;
            ub.flag = false; // ownership already recorded
            send(ub);
        }
        if (m.type == MsgType::LoadFwd) {
            unsigned off = params.geometry.offsetOf(cs.ref.addr);
            cs.vSample = e->data[off];
            checkReadSample(cs.ref.addr, e->data[off]);
            completeRef(me);
        } else {
            performOwnedWrite(me);
        }
        return;
    }

    panic_if(!e || !cache::isOwned(e->field.state),
             "forward reached non-owner %u for block %llu", me,
             static_cast<unsigned long long>(m.blk));
    trace(TraceEvent::Forward, me, r,
          static_cast<std::uint8_t>(m.type), m.seq, m.blk);
    Mode mode = cache::modeOf(e->field.state);

    if (m.type == MsgType::LoadFwd) {
#ifdef MSCP_FAULT_SEAM
        if (!(g_faultSeam && mode == Mode::DistributedWrite))
            e->field.present.set(r);
#else
        e->field.present.set(r);
#endif
        if (mode == Mode::DistributedWrite) {
            e->field.state = State::OwnedNonExclDW;
            Msg reply;
            reply.type = MsgType::DataBlock;
            reply.src = me;
            reply.dst = r;
            reply.blk = m.blk;
            reply.data = e->data;
            reply.flag = m.flag;
            reply.seq = m.seq; // echo of the requester's attempt
            reply.tok = m.tok; // busy token travels to the unblock
            reply.field.state = State::UnOwned;
            send(reply);
        } else {
            e->field.state = State::OwnedNonExclGR;
            Msg reply;
            reply.type = MsgType::Datum;
            reply.src = me;
            reply.dst = r;
            reply.blk = m.blk;
            reply.offset = m.offset;
            reply.value = e->data[m.offset];
            reply.flag = m.flag;
            reply.seq = m.seq;
            reply.tok = m.tok;
            send(reply);
        }
        // The served value is this read's linearization point.
        checkReadSample(params.geometry.baseOf(m.blk) + m.offset,
                        e->data[m.offset]);
        return;
    }

    // Ownership transfer (LoadOwnFwd or OwnFwd).
    ++ctrs.ownershipTransfers;
    // An upgrade (OwnFwd) from a cache absent from the present
    // vector lost its copy while the request was queued (an
    // invalidation under a previous busy period); ship the data
    // too. Evaluate before registering the requester.
    bool requester_has_copy = e->field.present.test(r);
    e->field.present.set(r);

    cache::StateField field = e->field;
    field.owner = invalidNode;
    bool send_copy = (m.type == MsgType::LoadOwnFwd) ||
        mode == Mode::GlobalRead || !requester_has_copy;
    field.state = (mode == Mode::DistributedWrite)
        ? State::OwnedNonExclDW : State::OwnedNonExclGR;

    Msg reply;
    reply.type = send_copy ? MsgType::StateCopyXfer
        : MsgType::StateXfer;
    reply.src = me;
    reply.dst = r;
    reply.blk = m.blk;
    reply.requester = r; // marks this as the requester's own reply
    reply.field = field;
    reply.flag = m.flag;
    reply.seq = m.seq;
    reply.tok = m.tok;
    if (send_copy)
        reply.data = e->data;
    send(reply);

    if (mode == Mode::DistributedWrite) {
        e->field.state = State::UnOwned;
        e->field.modified = false;
        e->field.present.clear();
    } else {
        // Announce the new owner to the other pointer holders.
        announceScratch.clear();
        const DynamicBitset &p = field.present;
        for (std::size_t i = p.findFirst(); i < p.size();
             i = p.findNext(i)) {
            if (i != r && i != me)
                announceScratch.push_back(static_cast<NodeId>(i));
        }
        sendMulticastMsg(MsgType::OwnerAnnounce, me,
                         announceScratch,
                         params.sizes.ownerIdPayload(numCaches()),
                         m.blk, 0, r, r);
        e->field.state = State::Invalid;
        e->field.owner = r;
        e->field.modified = false;
        e->field.present.clear();
    }
}

void
ConcurrentProtocol::dropStaleReply(const Msg &m)
{
    NodeId me = m.dst;
    CpuState &cs = cpus[me];
    ++ctrs.staleReplies;
    if (m.flag) {
        // Served under a busy period: the home still waits for the
        // release (a no-op there if the accepted copy already sent
        // it - the token is single-use).
        Msg ub;
        ub.type = MsgType::Unblock;
        ub.src = me;
        ub.dst = homeOf(m.blk);
        ub.toMemory = true;
        ub.blk = m.blk;
        ub.requester = me;
        ub.tok = m.tok;
        ub.flag = false;
        send(ub);
    }
    if (!findEntry(me, m.blk) && !cs.clearPending.contains(m.blk)) {
        // The serve registered us in the owner's present vector but
        // we keep no entry: deregister, or the directory invariants
        // break at quiescence.
        Msg pc;
        pc.type = MsgType::PresentClear;
        pc.src = me;
        pc.dst = homeOf(m.blk);
        pc.toMemory = true;
        pc.blk = m.blk;
        pc.requester = me;
        send(pc);
        cs.clearPending.insert(m.blk);
    }
}

void
ConcurrentProtocol::handleCacheMsg(const Msg &m)
{
    NodeId me = m.dst;
    CpuState &cs = cpus[me];
    Entry *e = findEntry(me, m.blk);

    switch (m.type) {
      case MsgType::LoadFwd:
      case MsgType::LoadOwnFwd:
      case MsgType::OwnFwd:
        serveForward(m);
        return;

      case MsgType::LoadReq: {
        // Direct pointer-bypass read.
        if (crashEnabled() && deadNodes.test(m.requester))
            return; // requester died with its request in flight
        bool canServe = e && cache::isOwned(e->field.state);
#ifdef MSCP_FAULT_SEAM
        if (g_livelockSeam)
            canServe = false; // refuse reads we own (livelock seam)
#endif
        if (canServe) {
            Mode mode = cache::modeOf(e->field.state);
            e->field.present.set(m.requester);
            if (mode == Mode::GlobalRead) {
                e->field.state = State::OwnedNonExclGR;
                Msg reply;
                reply.type = MsgType::Datum;
                reply.src = me;
                reply.dst = m.requester;
                reply.blk = m.blk;
                reply.offset = m.offset;
                reply.value = e->data[m.offset];
                reply.seq = m.seq;
                send(reply);
            } else {
                e->field.state = State::OwnedNonExclDW;
                Msg reply;
                reply.type = MsgType::DataBlock;
                reply.src = me;
                reply.dst = m.requester;
                reply.blk = m.blk;
                reply.data = e->data;
                reply.field.state = State::UnOwned;
                reply.seq = m.seq;
                send(reply);
            }
            checkReadSample(params.geometry.baseOf(m.blk) +
                            m.offset, e->data[m.offset]);
        } else {
            trace(TraceEvent::Nack, me, m.requester,
                  static_cast<std::uint8_t>(MsgType::NackNotOwner),
                  m.seq, m.blk);
            Msg nack;
            nack.type = MsgType::NackNotOwner;
            nack.src = me;
            nack.dst = m.requester;
            nack.blk = m.blk;
            nack.seq = m.seq;
            send(nack);
        }
        return;
      }

      case MsgType::NackNotOwner: {
        // Our pointer bypass raced with a transfer: fall back to
        // the home, re-running the access (the entry may be gone).
        if (!cs.active || m.seq != cs.txSeq ||
            cs.phase != Phase::WaitPointer ||
            params.geometry.blockOf(cs.ref.addr) != m.blk) {
            ++ctrs.staleReplies; // duplicate of a handled nack
            return;
        }
        ++ctrs.pointerNacks;
#ifdef MSCP_FAULT_SEAM
        if (!g_livelockSeam) // seam: never fall back to the home
            ++cs.pointerRetries;
#else
        ++cs.pointerRetries;
#endif
        cs.pinnedTx.erase(m.blk);
        cs.phase = Phase::Idle;
        disarmTimeout(me);
        startAccess(me);
        return;
      }

      case MsgType::Datum: {
        bool mine = cs.active && m.seq == cs.txSeq &&
            !cs.ref.isWrite &&
            params.geometry.blockOf(cs.ref.addr) == m.blk &&
            (cs.phase == Phase::WaitHome ||
             cs.phase == Phase::WaitPointer);
        if (!mine) {
            dropStaleReply(m);
            return;
        }
        if (crashEnabled() && cs.purged.contains(m.blk)) {
            // Served before the reconstruction fence: the value and
            // the owner hint predate the crash. Re-run the access
            // against the rebuilt directory.
            restartPurgedTx(me, m);
            return;
        }
        disarmTimeout(me);
        // The value was checked at its sampling point (the owner).
        if (cs.phase == Phase::WaitHome) {
            panic_if(!e, "datum reply without an entry");
            e->field.state = State::Invalid;
            e->field.owner = m.src;
            if (m.flag) {
                Msg ub;
                ub.type = MsgType::Unblock;
                ub.src = me;
                ub.dst = homeOf(m.blk);
                ub.toMemory = true;
                ub.blk = m.blk;
                ub.tok = m.tok;
                ub.flag = false;
                send(ub);
            }
        } else {
            if (e && e->field.owner == invalidNode) {
                // Our pointer entry was invalidated (and replaced
                // by a placeholder) while the request was in
                // flight: the owner registration is gone, so drop
                // the stale hint instead of resurrecting it.
                cs.array.evict(*e);
            } else if (e) {
                e->field.owner = m.src;
            }
        }
        cs.vSample = m.value;
        completeRef(me);
        return;
      }

      case MsgType::DataBlock: {
        // A write transaction can only be completed by an owning
        // grant (from memory, or a StateCopyXfer); an UnOwned copy
        // reaching it is a stale duplicate of an earlier read's
        // serve that must not be mistaken for the reply.
        // WaitOwnXfer is a valid receiving phase: an upgrade whose
        // previous owner fully evicted is served from memory with
        // a DataBlock, not a transfer.
        //
        // A stale owning grant (its attempt superseded by a
        // recovery restart) is NOT accepted: its payload is
        // memory's value as of the old serve, and recovery may
        // have let another write complete since. dropStaleReply
        // releases the serve's busy period with flag=false, so the
        // home never registers the refuser as owner.
        bool grant = cache::isOwned(m.field.state);
        bool mine = cs.active && m.seq == cs.txSeq &&
            params.geometry.blockOf(cs.ref.addr) == m.blk &&
            (cs.phase == Phase::WaitHome ||
             cs.phase == Phase::WaitPointer ||
             cs.phase == Phase::WaitOwnXfer) &&
            (!cs.ref.isWrite || grant);
        if (mine && crashEnabled() && cs.purged.contains(m.blk)) {
            if (cache::isOwned(m.field.state)) {
                // An owning grant comes straight from memory, and a
                // fenced home serves nothing: this is the rebuilt
                // block, not pre-crash state. Accept it and drop
                // the restart marker.
                cs.purged.erase(m.blk);
            } else {
                // A non-owning copy could have been served before
                // the fence; restart against the rebuilt directory.
                restartPurgedTx(me, m);
                return;
            }
        }
        if (!mine || !e) {
            dropStaleReply(m);
            return;
        }
        disarmTimeout(me);
        e->data = m.data;
        e->field.state = m.field.state;
        if (cache::isOwned(e->field.state)) {
            // From memory: we are the (exclusive) owner now.
            e->field.present.clear();
            e->field.present.set(me);
            e->field.modified = false;
        }
        e->field.owner = invalidNode;
        if (m.flag) {
            Msg ub;
            ub.type = MsgType::Unblock;
            ub.src = me;
            ub.dst = homeOf(m.blk);
            ub.toMemory = true;
            ub.blk = m.blk;
            ub.requester = me;
            ub.tok = m.tok;
            // An owning grant from memory is confirmed here: the
            // home registers us as owner only on this release, so
            // a refused grant leaves the directory unowned.
            ub.flag = grant;
            send(ub);
        }
        if (cs.ref.isWrite) {
            performOwnedWrite(me);
        } else {
            // The value was checked at its sampling point (owner
            // or home); the reply payload is authoritative.
            cs.vSample =
                m.data[params.geometry.offsetOf(cs.ref.addr)];
            completeRef(me);
        }
        return;
      }

      case MsgType::StateXfer:
      case MsgType::StateCopyXfer: {
        // Continue our own transaction only if this transfer is
        // the reply to it (requester tag): an ownership hand-off
        // can land while our upgrade request is still queued at
        // the home, and that request's eventual (self-)forward is
        // the transaction's real completion point.
        bool mine = cs.active && m.requester == me &&
            m.seq == cs.txSeq && cs.ref.isWrite &&
            params.geometry.blockOf(cs.ref.addr) == m.blk &&
            (cs.phase == Phase::WaitOwnXfer ||
             cs.phase == Phase::WaitHome);
        bool handoff = m.requester == invalidNode &&
            cs.pinnedOffer.contains(m.blk);
        if (!mine && !handoff) {
            // Duplicate of an accepted transfer. Mirror the unblock
            // the accepted copy sent (flag=true): the token is
            // single-use at the home, so whichever release arrives
            // first records the same ownership change and the other
            // is discarded.
            ++ctrs.staleReplies;
            if (m.flag) {
                Msg ub;
                ub.type = MsgType::Unblock;
                ub.src = me;
                ub.dst = homeOf(m.blk);
                ub.toMemory = true;
                ub.blk = m.blk;
                ub.requester = me;
                ub.tok = m.tok;
                ub.flag = true;
                send(ub);
            }
            return;
        }
        if (mine && crashEnabled() && cs.purged.contains(m.blk)) {
            // Unlike an owning DataBlock grant (memory only serves
            // those after the rebuild), a transfer comes from
            // another cache and can have been launched before the
            // reconstruction fence -- its field and present vector
            // are pre-crash state. Hand the busy token back and
            // re-run against the rebuilt directory; memory plus
            // the durable-write log is authoritative after a
            // crash, so the in-flight copy may be dropped.
            restartPurgedTx(me, m);
            return;
        }
        panic_if(!e, "state transfer without an entry");
        panic_if(m.type == MsgType::StateXfer &&
                 e->field.state != State::UnOwned,
                 "data-less state transfer onto a %s entry",
                 cache::stateName(e->field.state));
        if (mine)
            disarmTimeout(me);
        e->field = m.field;
        e->field.owner = invalidNode;
        if (crashEnabled()) {
            // A transfer carries the old owner's present vector;
            // never inherit a registration for a crashed cache.
            for (std::size_t i = deadNodes.findFirst();
                 i < deadNodes.size(); i = deadNodes.findNext(i))
                e->field.present.reset(i);
        }
        panic_if(!e->field.present.test(me),
                 "transferred present vector misses the new owner");
        if (m.type == MsgType::StateCopyXfer)
            e->data = m.data;
        maybeExclusive(*e, me);
        cs.array.touch(*e);

        if (m.flag) {
            Msg ub;
            ub.type = MsgType::Unblock;
            ub.src = me;
            ub.dst = homeOf(m.blk);
            ub.toMemory = true;
            ub.blk = m.blk;
            ub.requester = me;
            ub.tok = m.tok;
            ub.flag = true; // record the ownership change
            send(ub);
        }
        if (mine) {
            performOwnedWrite(me);
        } else {
            // Accepted hand-off: unpin the offer.
            cs.pinnedOffer.erase(m.blk);
        }
        return;
      }

      case MsgType::DwUpdate: {
        if (e && e->field.state == State::UnOwned)
            e->data[m.offset] = m.value;
        Msg ack;
        ack.type = MsgType::DwAck;
        ack.src = me;
        ack.dst = m.src;
        ack.blk = m.blk;
        send(ack);
        return;
      }

      case MsgType::DwAck: {
        if (cs.phase != Phase::WaitDwAcks ||
            params.geometry.blockOf(cs.ref.addr) != m.blk ||
            !cs.ackFrom.test(m.src)) {
            return; // overshoot delivery or duplicate ack: ignore
        }
        cs.ackFrom.reset(m.src);
        if (--cs.pendingAcks == 0)
            completeRef(me);
        return;
      }

      case MsgType::Invalidate: {
        if (e) {
            bool pinned = cs.isPinned(m.blk);
            cs.array.evict(*e);
            if (pinned) {
                // Keep a placeholder for the in-flight reply.
                Entry *fresh = cs.array.pickVictim(m.blk);
                cs.array.install(*fresh, m.blk);
            }
        }
        Msg ack;
        ack.type = MsgType::InvalAck;
        ack.src = me;
        ack.dst = m.src;
        ack.blk = m.blk;
        send(ack);
        return;
      }

      case MsgType::InvalAck: {
        if (cs.phase != Phase::WaitInvalAcks ||
            cs.victimBlk != m.blk || !cs.ackFrom.test(m.src)) {
            return;
        }
        cs.ackFrom.reset(m.src);
        if (--cs.pendingAcks == 0) {
            Entry *ve = findEntry(me, cs.victimBlk);
            finishEviction(me, true,
                           ve && ve->field.modified);
        }
        return;
      }

      case MsgType::OwnerAnnounce: {
        // Never resurrect a pointer to a dead owner: the announce
        // was in flight when its subject crashed.
        if (e && e->field.state == State::Invalid &&
            !deadNodes.test(static_cast<NodeId>(m.value)))
            e->field.owner = static_cast<NodeId>(m.value);
        return;
      }

      case MsgType::PresentClear: {
        // Forwarded from the home: clear the leaver's flag and
        // confirm to the leaver so it may re-acquire the block.
        if (e && cache::isOwned(e->field.state)) {
            e->field.present.reset(m.requester);
            maybeExclusive(*e, me);
            Msg ack;
            ack.type = MsgType::PresentClearAck;
            ack.src = me;
            ack.dst = m.requester;
            ack.blk = m.blk;
            send(ack);
        } else {
            Msg nack;
            nack.type = MsgType::NackNotOwner;
            nack.src = me;
            nack.dst = homeOf(m.blk);
            nack.toMemory = true;
            nack.blk = m.blk;
            nack.requester = m.requester;
            send(nack);
        }
        return;
      }

      case MsgType::PresentClearAck: {
        cs.clearPending.erase(m.blk);
        return;
      }

      case MsgType::OfferOwner: {
        if (crashEnabled() && deadNodes.test(m.src)) {
            // A dead evictor's offer: accepting would pin the
            // block for a transfer that can never come.
            return;
        }
        bool acceptable = e && !cs.isPinned(m.blk) &&
            (e->field.state == State::UnOwned ||
             (e->field.state == State::Invalid &&
              e->field.owner != invalidNode));
        Msg reply;
        reply.type = acceptable ? MsgType::OfferAck
            : MsgType::OfferNack;
        reply.src = me;
        reply.dst = m.src;
        reply.blk = m.blk;
        if (acceptable)
            cs.pinnedOffer.insert(m.blk); // reserved for transfer
        send(reply);
        return;
      }

      case MsgType::OfferAck: {
        if (cs.phase != Phase::WaitOffer || !cs.evicting ||
            m.blk != cs.victimBlk ||
            m.src != cs.candidates[cs.candIdx]) {
            // The offeree pinned the block for a transfer that is
            // not coming; only its own eviction unpins it. Possible
            // only under plans faulting control messages - the
            // watchdog's department, not worth a revoke handshake.
            ++ctrs.staleReplies;
            return;
        }
        Entry *ve = findEntry(me, cs.victimBlk);
        panic_if(!ve, "offer ack without a victim");
        ++ctrs.ownershipTransfers;

        Mode mode = cache::modeOf(ve->field.state);
        cache::StateField field = ve->field;
        field.present.reset(me); // we are leaving
        field.owner = invalidNode;
        field.state = (mode == Mode::DistributedWrite)
            ? State::OwnedNonExclDW : State::OwnedNonExclGR;

        if (mode == Mode::GlobalRead) {
            announceScratch.clear();
            const DynamicBitset &p = field.present;
            for (std::size_t i = p.findFirst(); i < p.size();
                 i = p.findNext(i)) {
                if (i != m.src)
                    announceScratch.push_back(
                        static_cast<NodeId>(i));
            }
            sendMulticastMsg(
                MsgType::OwnerAnnounce, me, announceScratch,
                params.sizes.ownerIdPayload(numCaches()),
                cs.victimBlk, 0, m.src, m.src);
        }

        Msg x;
        x.type = (mode == Mode::DistributedWrite)
            ? MsgType::StateXfer : MsgType::StateCopyXfer;
        x.src = me;
        x.dst = m.src;
        x.blk = cs.victimBlk;
        x.requester = invalidNode; // hand-off, not a request reply
        x.field = field;
        x.flag = true; // eviction busy released by new owner
        x.tok = cs.evictToken; // ... with this eviction's token
        if (mode == Mode::GlobalRead)
            x.data = ve->data;
        send(x);

        cs.array.evict(*ve);
        endEviction(me);
        cs.evicting = false;
        cs.phase = Phase::Idle;
        startAccess(me);
        return;
      }

      case MsgType::OfferNack: {
        if (cs.phase != Phase::WaitOffer || !cs.evicting ||
            m.blk != cs.victimBlk ||
            m.src != cs.candidates[cs.candIdx]) {
            ++ctrs.staleReplies;
            return;
        }
        ++ctrs.handoffNacks;
        ++cs.candIdx;
        sendNextOffer(me);
        return;
      }

      case MsgType::RecoveryPurge: {
        // Directory reconstruction probe (m.src = the recovering
        // home): drop any copy or stale OWNER pointer of the block
        // and acknowledge; a surviving owner ships its copy back,
        // since that copy - not memory - is authoritative when the
        // crashed node wedged the block mid-transfer.
        ++ctrs.purges;
        trace(TraceEvent::Purge, me, m.src, 0, m.blk, 0);
        Msg ack;
        ack.type = MsgType::RecoveryAck;
        ack.src = me;
        ack.dst = m.src;
        ack.toMemory = true;
        ack.blk = m.blk;
        ack.requester = me;
        if (e) {
            if (cache::isOwned(e->field.state)) {
                ack.flag = e->field.modified;
                ack.data = e->data;
            }
            cs.array.evict(*e);
        }
        cs.pinnedOffer.erase(m.blk);
        cs.clearPending.erase(m.blk);
        if (cs.evicting && cs.victimBlk == m.blk) {
            // The victim vanished with the reconstruction: nothing
            // left to hand over. Abandon the eviction and re-run
            // the access that triggered it.
            cs.pendingAcks = 0;
            cs.ackFrom.clear();
            disarmTimeout(me);
            endEviction(me);
            cs.evicting = false;
            cs.phase = Phase::Idle;
            cs.attempts = 0;
            send(ack);
            startAccess(me);
            return;
        }
        if (cs.active && cs.phase != Phase::Commit &&
            params.geometry.blockOf(cs.ref.addr) == m.blk) {
            // A serve issued before the fence may still be in
            // flight; mark the transaction so such a reply
            // restarts it instead of installing pre-crash state,
            // and keep a placeholder entry for it to land in.
            cs.purged.insert(m.blk);
            if (!findEntry(me, m.blk)) {
                Entry *fresh = cs.array.pickVictim(m.blk);
                if (!fresh->occupied)
                    cs.array.install(*fresh, m.blk);
            }
        }
        send(ack);
        return;
      }

      case MsgType::RecoveryNack: {
        // The home rebuilt the block our stalled attempt was
        // anchored to: restart with a fresh sequence number. Safe
        // because the reconstruction fence discarded whatever
        // serve the old attempt had in flight.
        if (!cs.active) {
            ++ctrs.staleReplies;
            return;
        }
        if (cs.evicting && cs.phase == Phase::WaitEvictAck &&
            cs.victimBlk == m.blk) {
            // Re-issue the eviction handshake from scratch.
            cs.attempts = 0;
            Msg er;
            er.type = MsgType::EvictReq;
            er.src = me;
            er.dst = homeOf(m.blk);
            er.toMemory = true;
            er.blk = m.blk;
            er.requester = me;
            er.seq = cs.txSeq = ++cs.seqGen;
            cs.lastReq = er;
            send(er);
            armTimeout(me);
            return;
        }
        if (params.geometry.blockOf(cs.ref.addr) == m.blk &&
            (cs.phase == Phase::WaitHome ||
             cs.phase == Phase::WaitPointer ||
             cs.phase == Phase::WaitOwnXfer)) {
            restartPurgedTx(me, m);
            return;
        }
        ++ctrs.staleReplies;
        return;
      }

      case MsgType::EvictAck: {
        if (cs.phase == Phase::WaitEvictAck && cs.evicting &&
            m.blk == cs.victimBlk && m.seq == cs.txSeq) {
            cs.evictToken = m.tok;
            disarmTimeout(me);
            continueEviction(me);
            return;
        }
        if (cs.evicting && m.blk == cs.victimBlk &&
            m.tok == cs.evictToken) {
            // Duplicate of the grant we are already acting on.
            ++ctrs.staleReplies;
            return;
        }
        // Grant for an eviction that already finished (a retried
        // EvictReq drained after the original completed): the home
        // holds a fresh busy period for it; release it, touching
        // nothing.
        ++ctrs.staleReplies;
        Msg done;
        done.type = MsgType::EvictDone;
        done.src = me;
        done.dst = homeOf(m.blk);
        done.toMemory = true;
        done.blk = m.blk;
        done.tok = m.tok;
        done.flag = false;
        send(done);
        return;
      }

      default:
        panic("cache %u got unexpected message %s", me,
              msgTypeName(m.type));
    }
}

// ---------------------------------------------------------------
// Memory side
// ---------------------------------------------------------------

void
ConcurrentProtocol::processHomeRequest(HomeState &h, const Msg &m)
{
    BlockId blk = m.blk;
    if (crashEnabled() && deadNodes.test(m.requester)) {
        // The requester died with this request in flight (or
        // queued). Accepting it would mint a busy period nobody
        // can ever release; serving it would be answered into the
        // void. Drop it - a restarted node never reuses sequence
        // numbers, so nothing downstream expects this request.
        return;
    }
    if (h.busy.contains(blk)) {
        std::deque<Msg> &q = h.waiting[blk];
        for (Msg &w : q) {
            if (w.requester == m.requester) {
                // A retry superseding its still-queued original (a
                // cpu has one transaction, hence at most one live
                // request per block): replace in place so the
                // request is never served twice from the queue.
                w = m;
                ++ctrs.dupRequests;
                trace(TraceEvent::HomeDup, m.dst, m.requester,
                      static_cast<std::uint8_t>(m.type), m.seq, blk);
                return;
            }
        }
        q.push_back(m);
        ++ctrs.homeQueued;
        trace(TraceEvent::HomeQueue, m.dst, m.requester,
              static_cast<std::uint8_t>(m.type), m.seq, blk);
        return;
    }

    trace(TraceEvent::HomeAccept, m.dst, m.requester,
          static_cast<std::uint8_t>(m.type), m.seq, blk);

    if (m.type == MsgType::EvictReq) {
        h.busy.insert(blk);
        std::uint64_t token = ++h.busyTokenGen;
        h.busyToken[blk] = token;
        if (crashEnabled()) {
            h.busyReleaser[blk] = m.src;
            h.busySince[blk] = eq.curTick();
        }
        Msg ack;
        ack.type = MsgType::EvictAck;
        ack.src = h.mem.port();
        ack.dst = m.src;
        ack.blk = blk;
        ack.seq = m.seq;
        ack.tok = token;
        send(ack);
        return;
    }

    NodeId owner = h.mem.blockStore().owner(blk);
    NodeId r = m.requester;

    if (crashEnabled() && owner != invalidNode &&
        deadNodes.test(owner)) {
        // The registered owner is dead: park the request and
        // reconstruct the block instead of forwarding into the
        // void. (The stabilization sweep would get here anyway;
        // this reacts at first touch.)
        h.waiting[blk].push_back(m);
        ++ctrs.homeQueued;
        trace(TraceEvent::HomeQueue, m.dst, m.requester,
              static_cast<std::uint8_t>(m.type), m.seq, blk);
        startRecovery(h, blk, owner);
        return;
    }

    if (owner == invalidNode) {
        // No cached copy anywhere: serve from memory under this
        // block's busy period. Ownership is registered only when
        // the requester's Unblock (flag=true) confirms it accepted
        // the grant: a requester that a recovery restart already
        // moved past refuses the grant and releases the busy with
        // flag=false, leaving the directory unowned instead of
        // pointing at a cache with no copy (the liveness checker
        // finds that dangling registration as a weakly fair
        // forward/suspect/restart cycle on the crash config).
        h.busy.insert(blk);
        std::uint64_t token = ++h.busyTokenGen;
        h.busyToken[blk] = token;
        if (crashEnabled()) {
            h.busyReleaser[blk] = r;
            h.busySince[blk] = eq.curTick();
        }
        if (m.type == MsgType::LoadReq) {
            checkReadSample(params.geometry.baseOf(blk) + m.offset,
                            h.mem.readWord(blk, m.offset));
        }
        Msg reply;
        reply.type = MsgType::DataBlock;
        reply.src = h.mem.port();
        reply.dst = r;
        reply.blk = blk;
        reply.data = h.mem.readBlock(blk);
        // GR is the safe post-recovery mode: its owner never has
        // to trust pre-crash remote copies (DESIGN.md 5f).
        reply.field.state = cache::ownedState(
            (crashEnabled() && h.recoveredGR.contains(blk))
                ? Mode::GlobalRead : params.defaultMode,
            true);
        reply.flag = true; // busy held until the requester unblocks
        reply.seq = m.seq;
        reply.tok = token;
        send(reply);
        return;
    }

    // Forward to the owner under this block's busy period.
    h.busy.insert(blk);
    std::uint64_t token = ++h.busyTokenGen;
    h.busyToken[blk] = token;
    Msg fwd;
    switch (m.type) {
      case MsgType::LoadReq:
        fwd.type = MsgType::LoadFwd;
        break;
      case MsgType::LoadOwnReq:
        fwd.type = MsgType::LoadOwnFwd;
        break;
      case MsgType::OwnReq:
        fwd.type = MsgType::OwnFwd;
        break;
      default:
        panic("unexpected home request %s", msgTypeName(m.type));
    }
    if (crashEnabled()) {
        h.busyReleaser[blk] = r;
        h.busySince[blk] = eq.curTick();
    }
    fwd.src = h.mem.port();
    fwd.dst = owner;
    fwd.blk = blk;
    fwd.offset = m.offset;
    fwd.requester = r;
    fwd.flag = true; // busy held until the requester unblocks
    fwd.seq = m.seq; // echoed end-to-end back to the requester
    fwd.tok = token;
    send(fwd);
}

void
ConcurrentProtocol::drainHomeQueue(HomeState &h, BlockId blk)
{
    // Re-find after every request: processing can queue onto this
    // block again and rehash the waiting table.
    std::deque<Msg> *q = h.waiting.find(blk);
    while (q && !q->empty() && !h.busy.contains(blk)) {
        Msg m = std::move(q->front());
        q->pop_front();
        processHomeRequest(h, m);
        q = h.waiting.find(blk);
    }
    if (q && q->empty())
        h.waiting.erase(blk);
}

void
ConcurrentProtocol::handleMemMsg(const Msg &m)
{
    HomeState &h = homes[m.dst];
    BlockId blk = m.blk;

    switch (m.type) {
      case MsgType::LoadReq:
      case MsgType::LoadOwnReq:
      case MsgType::OwnReq:
      case MsgType::EvictReq: {
        // Per-requester duplicate suppression: each operation
        // carries a fresh sequence number, operations from one cpu
        // are serialized, and timeout retries resend the same seq,
        // so an older-or-equal arrival can only be an injected
        // duplicate, a timeout resend whose original got through,
        // or a superseded operation's late copy -- all safe to drop.
        std::uint64_t &seen = h.seqSeen[m.requester];
        if (m.seq <= seen) {
            ++ctrs.dupRequests;
            trace(TraceEvent::HomeDup, m.dst, m.requester,
                  static_cast<std::uint8_t>(m.type), m.seq, blk);
            return;
        }
        seen = m.seq;
        processHomeRequest(h, m);
        return;
      }

      case MsgType::Unblock: {
        // Only the release carrying the busy period's own token
        // counts; duplicates and releases from superseded serves
        // carry a dead token and must not unlock a later period.
        const std::uint64_t *tok = h.busyToken.find(blk);
        if (!tok || *tok != m.tok) {
            ++ctrs.staleUnblocks;
            return;
        }
        h.busyToken.erase(blk);
        if (crashEnabled()) {
            h.busyReleaser.erase(blk);
            h.busySince.erase(blk);
        }
        if (m.flag)
            h.mem.blockStore().setOwner(blk, m.requester);
        h.busy.erase(blk);
        drainHomeQueue(h, blk);
        return;
      }

      case MsgType::EvictDone: {
        const std::uint64_t *tok = h.busyToken.find(blk);
        if (!tok || *tok != m.tok) {
            // A duplicate of a finished eviction's release: its
            // write-back/clear already happened; touching memory
            // again could clobber a newer owner's state.
            ++ctrs.staleUnblocks;
            return;
        }
        h.busyToken.erase(blk);
        if (!m.data.empty()) {
            if (crashEnabled()) {
                // Respect per-word durable stamps: a write-back
                // must not clobber a fresher durable word that
                // raced past it.
                for (unsigned off = 0;
                     off < static_cast<unsigned>(m.data.size());
                     ++off)
                    applyDurableWord(h, blk, off, m.data[off],
                                     m.seq);
            } else {
                h.mem.writeBlock(blk, m.data);
            }
        }
        if (crashEnabled()) {
            h.busyReleaser.erase(blk);
            h.busySince.erase(blk);
        }
        if (m.flag)
            h.mem.blockStore().clear(blk);
        h.busy.erase(blk);
        drainHomeQueue(h, blk);
        return;
      }

      case MsgType::SuspectOwner: {
        if (!crashEnabled())
            return;
        if (h.recovering.contains(blk)) {
            // Already reconstructing: remember the suspecter so it
            // gets its restart hint when the rebuild finishes.
            RecoveryCtx &ctx = h.recoveryCtx[blk];
            if (std::find(ctx.suspecters.begin(),
                          ctx.suspecters.end(),
                          m.requester) == ctx.suspecters.end())
                ctx.suspecters.push_back(m.requester);
            return;
        }
        NodeId owner = h.mem.blockStore().owner(blk);
        auto rel = h.busyReleaser.find(blk);
        bool owner_dead =
            owner != invalidNode && deadNodes.test(owner);
        bool releaser_dead = h.busy.contains(blk) &&
            rel != h.busyReleaser.end() &&
            deadNodes.test(rel->second);
        if (!owner_dead && !releaser_dead) {
            if (!h.busy.contains(blk)) {
                // Orphaned waiter: its request was consumed (so
                // retries are duplicate-suppressed) but whatever
                // served it died with the crash, and with no busy
                // period there is no forward still in flight that a
                // restart could orphan. Hand it a direct restart
                // hint.
                ++ctrs.recoveryNacks;
                Msg nack;
                nack.type = MsgType::RecoveryNack;
                nack.src = h.mem.port();
                nack.dst = m.requester;
                nack.blk = blk;
                nack.requester = m.requester;
                send(nack);
                return;
            }
            // Busy with live anchors. A healthy busy period lasts
            // a few round trips; one that has outlived the
            // suspecter's whole retry ladder is wedged even though
            // nobody died on paper - e.g. an eviction hand-off
            // whose ownership transfer was destined for a node
            // that crashed with it in flight (neither the evictor
            // nor the block store ever names the acceptor).
            // Otherwise the ordinary retry/stale machinery wins:
            // restarting an attempt whose serve may still be in
            // flight would orphan what that serve carries.
            auto since = h.busySince.find(blk);
            bool wedged = since != h.busySince.end() &&
                eq.curTick() - since->second >
                    params.crashSuspectDelay;
            if (!wedged) {
                ++ctrs.staleReplies;
                return;
            }
        }
        ++ctrs.suspects;
        startRecovery(h, blk,
                      owner_dead ? owner
                                 : rel != h.busyReleaser.end()
                                       ? rel->second : owner);
        RecoveryCtx &ctx = h.recoveryCtx[blk];
        if (std::find(ctx.suspecters.begin(), ctx.suspecters.end(),
                      m.requester) == ctx.suspecters.end())
            ctx.suspecters.push_back(m.requester);
        return;
      }

      case MsgType::RecoveryAck: {
        auto it = h.recoveryCtx.find(blk);
        if (it == h.recoveryCtx.end() ||
            !it->second.pending.contains(m.requester))
            return; // duplicate or multicast-overshoot echo
        RecoveryCtx &ctx = it->second;
        ctx.pending.erase(m.requester);
        ++ctx.acks;
        if (!m.data.empty()) {
            // At most one surviving cache can have held the block
            // owned; its copy is the authoritative one.
            ctx.data = m.data;
            ctx.haveData = true;
        }
        if (ctx.pending.empty())
            finishRecovery(h, blk);
        return;
      }

      case MsgType::DurableWrite: {
        // Crash-mode write-through: commit the word at the home so
        // an owner crash cannot lose a committed write. The stamp
        // (send tick) keeps a delayed older word from overwriting
        // a newer one; ownership hand-offs order stamps causally.
        applyDurableWord(h, blk, m.offset, m.value, m.seq);
        return;
      }

      case MsgType::PresentClear: {
        NodeId owner = h.mem.blockStore().owner(blk);
        if (owner == invalidNode) {
            // Block fully evicted meanwhile: nothing to clear, but
            // the leaver still waits for its acknowledgement.
            Msg ack;
            ack.type = MsgType::PresentClearAck;
            ack.src = h.mem.port();
            ack.dst = m.requester;
            ack.blk = blk;
            send(ack);
            return;
        }
        Msg fwd = m;
        fwd.src = h.mem.port();
        fwd.dst = owner;
        fwd.toMemory = false;
        send(fwd);
        return;
      }

      case MsgType::NackNotOwner: {
        // A PresentClear forward missed (ownership moved): retry
        // against the current owner after a short delay.
        ++ctrs.presentClearRetries;
        Msg retry;
        retry.type = MsgType::PresentClear;
        retry.src = m.dst;
        retry.dst = m.dst;
        retry.toMemory = true;
        retry.blk = blk;
        retry.requester = m.requester;
        scheduleLocal(std::move(retry), 20);
        return;
      }

      default:
        panic("memory %u got unexpected message %s", m.dst,
              msgTypeName(m.type));
    }
}

// ---------------------------------------------------------------
// Timeouts, retry, liveness watchdog
// ---------------------------------------------------------------

void
ConcurrentProtocol::armTimeout(NodeId cpu)
{
    if (params.timeoutBase == 0 || _aborted)
        return;
    CpuState &cs = cpus[cpu];
    if (vControlled) {
        // The timer never reaches the event queue (nor the jitter
        // RNG): firing is an explorer action guarded by the seq.
        cs.timeoutArmed = true;
        cs.vTimeoutSeq = cs.txSeq;
        return;
    }
    if (cs.timeoutArmed)
        eq.deschedule(cs.timeoutEv);
    // Bounded exponential backoff with jitter: retry i waits
    // timeoutBase << i (capped), plus up to a quarter extra so
    // synchronized retry storms decorrelate.
    unsigned shift = std::min(cs.attempts, 20u);
    Tick delay = std::min(params.timeoutBase << shift,
                          params.timeoutCap);
    delay += retryRng.uniform(0, delay / 4);
    mx.sample(mid.retryBackoff, delay);
    std::uint64_t seq = cs.txSeq;
    cs.timeoutEv = eq.scheduleIn(
        [this, cpu, seq] { onTimeout(cpu, seq); }, delay);
    cs.timeoutArmed = true;
}

void
ConcurrentProtocol::disarmTimeout(NodeId cpu)
{
    CpuState &cs = cpus[cpu];
    if (vControlled) {
        cs.timeoutArmed = false;
        return;
    }
    if (cs.timeoutArmed) {
        eq.deschedule(cs.timeoutEv);
        cs.timeoutArmed = false;
    }
}

void
ConcurrentProtocol::onTimeout(NodeId cpu, std::uint64_t seq)
{
    CpuState &cs = cpus[cpu];
    cs.timeoutArmed = false;
    // A timer for a superseded attempt (or a settled transaction)
    // is a no-op: accepting a late reply is always preferred over
    // retrying.
    if (_aborted || !cs.active || cs.txSeq != seq)
        return;
    ++ctrs.timeouts;
    trace(TraceEvent::Timeout, cpu, cpu,
          static_cast<std::uint8_t>(cs.phase), cs.opId, cs.attempts);
    if (cs.attempts >= params.maxRetries) {
        if (crashEnabled() && cs.phase == Phase::WaitPointer) {
            // The pointed-at owner is unreachable (likely dead):
            // fall back to the home exactly like a pointer NACK
            // would. A late Datum of the abandoned attempt is
            // absorbed by the stale-reply machinery.
            cs.pointerRetries = 2;
            cs.pinnedTx.erase(params.geometry.blockOf(cs.ref.addr));
            cs.phase = Phase::Idle;
            cs.attempts = 0;
            startAccess(cpu);
            return;
        }
        if (crashEnabled() &&
            (cs.phase == Phase::WaitHome ||
             cs.phase == Phase::WaitOwnXfer ||
             cs.phase == Phase::WaitEvictAck)) {
            // Retries exhausted on a request the home has seen:
            // raise a suspicion so the home can check whether the
            // block's anchor (owner or busy releaser) died, and
            // keep retrying while it investigates.
            BlockId sblk = cs.phase == Phase::WaitEvictAck
                ? cs.victimBlk
                : params.geometry.blockOf(cs.ref.addr);
            Msg sus;
            sus.type = MsgType::SuspectOwner;
            sus.src = cpu;
            sus.dst = homeOf(sblk);
            sus.toMemory = true;
            sus.blk = sblk;
            sus.requester = cpu;
            send(sus);
            cs.attempts = 0;
            armTimeout(cpu);
            return;
        }
        ++ctrs.retriesExhausted;
        return; // wedged for good: the watchdog reports it
    }
    ++cs.attempts;
    BlockId blk = params.geometry.blockOf(cs.ref.addr);

    switch (cs.phase) {
      case Phase::WaitPointer:
      case Phase::WaitHome:
      case Phase::WaitOwnXfer:
      case Phase::WaitEvictAck:
        // Resend the outstanding request verbatim (same seq). If
        // the original merely crawled -- still in flight, queued
        // behind a busy period, or its serve already under way --
        // the duplicate is suppressed at the home and the late
        // serve still matches txSeq. Only a request that truly
        // vanished makes the resend visible. Never restart with a
        // fresh seq here: abandoning an attempt whose serve is in
        // flight would orphan the ownership or present bit that
        // serve carries.
        ++ctrs.retries;
        trace(TraceEvent::Retry, cpu, cs.lastReq.dst,
              static_cast<std::uint8_t>(cs.lastReq.type), cs.opId,
              cs.attempts);
        send(cs.lastReq);
        armTimeout(cpu);
        return;

      case Phase::WaitDwAcks:
      case Phase::WaitInvalAcks: {
        // Re-send to the copies that have not answered. Updates
        // and invalidations are idempotent and the ack filter
        // (ackFrom) absorbs duplicate acknowledgements.
        ++ctrs.retries;
        trace(TraceEvent::Retry, cpu, cpu,
              static_cast<std::uint8_t>(cs.phase), cs.opId,
              cs.attempts);
        std::vector<NodeId> rest;
        const DynamicBitset &a = cs.ackFrom;
        for (std::size_t i = a.findFirst(); i < a.size();
             i = a.findNext(i)) {
            rest.push_back(static_cast<NodeId>(i));
        }
        if (cs.phase == Phase::WaitDwAcks) {
            sendMulticastMsg(MsgType::DwUpdate, cpu, rest,
                             params.sizes.wordBits, blk,
                             params.geometry.offsetOf(cs.ref.addr),
                             cs.ref.value, cpu);
        } else {
            sendMulticastMsg(MsgType::Invalidate, cpu, rest, 0,
                             cs.victimBlk, 0, 0, cpu);
        }
        armTimeout(cpu);
        return;
      }

      default:
        // WaitOffer (re-offering could strand an accepted pin) and
        // deferred Idle states have nothing safe to re-send; keep
        // the timer running so coverage resumes on a phase change.
        armTimeout(cpu);
        return;
    }
}

void
ConcurrentProtocol::watchdogTick()
{
    watchdogArmed = false;
    if (_aborted || refsOutstanding == 0)
        return;
    Tick now = eq.curTick();
    std::vector<NodeId> dead;
    for (NodeId c = 0; c < cpus.size(); ++c) {
        const CpuState &cs = cpus[c];
        if (cs.active && now - cs.issueTick > params.watchdogAge)
            dead.push_back(c);
    }
    if (dead.empty()) {
        watchdogEv = eq.scheduleIn([this] { watchdogTick(); },
                                   params.watchdogPeriod);
        watchdogArmed = true;
        return;
    }
    ctrs.watchdogDeadlocks += dead.size();
    for (NodeId c : dead) {
        trace(TraceEvent::WatchdogFlag, c, c,
              static_cast<std::uint8_t>(cpus[c].phase), cpus[c].opId,
              now - cpus[c].issueTick);
    }
    _deadlockReport = buildDeadlockReport(dead);
    warn("concurrent watchdog: %zu transaction(s) exceeded age "
         "%llu at tick %llu - protocol deadlock\n%s",
         dead.size(),
         static_cast<unsigned long long>(params.watchdogAge),
         static_cast<unsigned long long>(now),
         _deadlockReport.c_str());
    // Abort gracefully: every self-rescheduling path checks the
    // flag, so the event queue drains and run() reports instead of
    // spinning forever.
    _aborted = true;
}

std::string
ConcurrentProtocol::buildDeadlockReport(
    const std::vector<NodeId> &dead)
{
    Tick now = eq.curTick();
    std::string out;
    if (crashEnabled()) {
        out += "  crashed nodes:";
        bool any = false;
        for (std::size_t n = deadNodes.findFirst();
             n < deadNodes.size(); n = deadNodes.findNext(n)) {
            out += csprintf(" %zu", n);
            any = true;
        }
        if (!any)
            out += " none";
        std::size_t rec = 0;
        for (const HomeState &h : homes)
            rec += h.recovering.size();
        out += csprintf(" (reconstructions in flight: %zu)\n", rec);
    }
    for (NodeId c : dead) {
        const CpuState &cs = cpus[c];
        BlockId blk = params.geometry.blockOf(cs.ref.addr);
        out += csprintf(
            "  cpu%u: %c @%llu blk=%llu phase=%s age=%llu "
            "attempts=%u seq=%llu evicting=%d victim=%llu "
            "pendingAcks=%u pinsTx=%zu pinsOffer=%zu "
            "clearPending=%zu\n",
            c, cs.ref.isWrite ? 'W' : 'R',
            static_cast<unsigned long long>(cs.ref.addr),
            static_cast<unsigned long long>(blk),
            phaseName(cs.phase),
            static_cast<unsigned long long>(now - cs.issueTick),
            cs.attempts,
            static_cast<unsigned long long>(cs.txSeq),
            cs.evicting,
            static_cast<unsigned long long>(cs.victimBlk),
            cs.pendingAcks, cs.pinnedTx.size(),
            cs.pinnedOffer.size(), cs.clearPending.size());
        const Entry *e = findEntry(c, blk);
        if (e) {
            out += csprintf(
                "        entry: state=%s owner=%u modified=%d "
                "present=%zu\n",
                cache::stateName(e->field.state), e->field.owner,
                e->field.modified, e->field.present.count());
        } else {
            out += "        entry: none\n";
        }
        const HomeState &h = homes[homeOf(blk)];
        const std::uint64_t *tok = h.busyToken.find(blk);
        const std::deque<Msg> *q = h.waiting.find(blk);
        out += csprintf(
            "        home%u: busy=%d token=%llu queued=%zu "
            "bsOwner=%u\n",
            homeOf(blk), h.busy.contains(blk),
            static_cast<unsigned long long>(tok ? *tok : 0),
            q ? q->size() : 0,
            h.mem.blockStore().owner(blk));
        // Replay the last trace records touching this cpu: the
        // state snapshot says where the transaction is stuck, the
        // timeline says how it got there.
        if (_tracer.enabled()) {
            constexpr std::size_t HistN = 16;
            std::vector<TraceRecord> hist;
            _tracer.forEach([&](const TraceRecord &r) {
                if (r.node == c || r.node2 == c) {
                    if (hist.size() == HistN)
                        hist.erase(hist.begin());
                    hist.push_back(r);
                }
            });
            out += csprintf("        last %zu event(s):\n",
                            hist.size());
            for (const TraceRecord &r : hist) {
                const auto ev = static_cast<TraceEvent>(r.kind);
                const char *cls = "";
                switch (ev) {
                  case TraceEvent::Send:
                  case TraceEvent::Deliver:
                  case TraceEvent::Forward:
                  case TraceEvent::Nack:
                  case TraceEvent::Retry:
                  case TraceEvent::HomeAccept:
                  case TraceEvent::HomeQueue:
                  case TraceEvent::HomeDup:
                    cls = msgTypeName(static_cast<MsgType>(r.cls));
                    break;
                  case TraceEvent::Issue:
                  case TraceEvent::Commit:
                  case TraceEvent::Complete:
                  case TraceEvent::EvictEnd:
                    cls = opClassName(static_cast<OpClass>(r.cls));
                    break;
                  case TraceEvent::Timeout:
                  case TraceEvent::WatchdogFlag:
                    cls = phaseName(static_cast<Phase>(r.cls));
                    break;
                  default:
                    break;
                }
                out += csprintf(
                    "          t=%llu %s %u->%u %s seq=%llu "
                    "arg=%llu\n",
                    static_cast<unsigned long long>(r.tick),
                    traceEventName(ev), r.node, r.node2, cls,
                    static_cast<unsigned long long>(r.seq),
                    static_cast<unsigned long long>(r.arg));
            }
        } else {
            out += "        (no event history: tracing disabled "
                   "or compiled out)\n";
        }
    }
    std::size_t inflight = 0;
    for (const MsgSlot &s : msgSlab) {
        if (s.refs > 0)
            ++inflight;
    }
    out += csprintf("  in-flight message slots: %zu (slab %zu)\n",
                    inflight, msgSlab.size());
    // Health tail: how much history the diagnosis above rests on
    // (a saturated ring means the timeline replays are partial),
    // which message classes the dead-node sink swallowed, and a
    // fresh scalar-metrics snapshot of the wedged system.
    if (_tracer.enabled()) {
        out += csprintf(
            "  trace ring: %llu recorded, %llu lost to overwrite\n",
            static_cast<unsigned long long>(_tracer.recorded()),
            static_cast<unsigned long long>(_tracer.dropped()));
    }
    if (crashEnabled()) {
        const FaultCounters &fc = injector.counters();
        out += "  crash-masked deliveries:";
        for (std::size_t c = 0; c < FaultCounters::N; ++c) {
            out += csprintf(
                " %s=%llu",
                faultClassName(static_cast<FaultClass>(c)),
                static_cast<unsigned long long>(fc.crashMasked[c]));
        }
        out += "\n";
    }
    if (mx.enabled()) {
        metricsProbe();
        out += csprintf("  metrics @%llu:",
                        static_cast<unsigned long long>(now));
        for (const MetricSeries &s : mreg.series()) {
            if (s.kind != MetricKind::Counter &&
                s.kind != MetricKind::Gauge) {
                continue;
            }
            out += csprintf(" %s=%llu", s.name.c_str(),
                            static_cast<unsigned long long>(
                                mx.values()[s.slot]));
        }
        out += "\n";
    }
    return out;
}

// ---------------------------------------------------------------
// Crash-stop failures and directory reconstruction
// ---------------------------------------------------------------

void
ConcurrentProtocol::crashNode(NodeId n, Tick restart_tick)
{
    if (_aborted || deadNodes.test(n))
        return;
    ++ctrs.crashes;
    trace(TraceEvent::Crash, n, n, 0, 0, restart_tick);
    deadNodes.set(n);

    // The failed controller loses everything instantly: tags,
    // state fields, data, and whatever transaction it was running.
    CpuState &cs = cpus[n];
    disarmTimeout(n);
    cs.array.reset();
    std::uint64_t lost = cs.active ? 1 : 0;
    if (restart_tick == 0) {
        // Never coming back: its queued references are lost too.
        lost += cs.queue.size();
        cs.queue.clear();
    }
    cs.active = false;
    cs.phase = Phase::Idle;
    cs.attempts = 0;
    cs.pointerRetries = 0;
    cs.pendingAcks = 0;
    cs.ackFrom.clear();
    cs.evicting = false;
    cs.candidates.clear();
    cs.candIdx = 0;
    cs.pinnedTx.clear();
    cs.pinnedOffer.clear();
    cs.clearPending.clear();
    cs.purged.clear();
    // seqGen/opGen deliberately survive: the homes' duplicate
    // filters are monotone, so a cold rejoin must not reuse
    // sequence numbers.
    ctrs.refsLost += lost;
    refsOutstanding -= lost;
    if (refsOutstanding == 0 && watchdogArmed) {
        eq.deschedule(watchdogEv);
        watchdogArmed = false;
    }

    // Perfect-failure-detector half of the model (DESIGN.md 5f):
    // survivors learn of the death at once and scrub their local
    // references to it - present bits, dangling OWNER pointers,
    // and ack/hand-off waits that would otherwise spin on a node
    // that can no longer answer.
    for (NodeId c = 0; c < cpus.size(); ++c) {
        if (c == n || deadNodes.test(c))
            continue;
        CpuState &lc = cpus[c];
        lc.array.forEachOccupied([&](Entry &e) {
            if (cache::isOwned(e.field.state) &&
                e.field.present.test(n)) {
                e.field.present.reset(n);
                maybeExclusive(e, c);
            } else if (e.field.state == State::Invalid &&
                       e.field.owner == n) {
                lc.array.evict(e);
            }
        });
        if ((lc.phase == Phase::WaitDwAcks ||
             lc.phase == Phase::WaitInvalAcks) &&
            lc.ackFrom.test(n)) {
            lc.ackFrom.reset(n);
            if (--lc.pendingAcks == 0) {
                if (lc.phase == Phase::WaitDwAcks) {
                    completeRef(c);
                } else {
                    Entry *ve = findEntry(c, lc.victimBlk);
                    finishEviction(c, true,
                                   ve && ve->field.modified);
                }
            }
        } else if (lc.phase == Phase::WaitOffer && lc.evicting &&
                   lc.candIdx < lc.candidates.size() &&
                   lc.candidates[lc.candIdx] == n) {
            ++ctrs.handoffNacks;
            ++lc.candIdx;
            sendNextOffer(c);
        }
    }

    cs.vCommitPending = false;
    cs.vDeferred = false;

    // An in-flight reconstruction must not wait for the newly dead
    // node's purge answer. (Controlled mode: the RecoveryNacks a
    // finished reconstruction sends originate at homes.)
    bool saved_role = vMemSend;
    vMemSend = true;
    for (HomeState &h : homes) {
        std::vector<BlockId> done;
        for (auto &[blk, ctx] : h.recoveryCtx) {
            if (ctx.pending.contains(n)) {
                ctx.pending.erase(n);
                if (ctx.pending.empty())
                    done.push_back(blk);
            }
        }
        for (BlockId blk : done)
            finishRecovery(h, blk);
    }
    vMemSend = saved_role;

    // The homes sweep the dead node's ownerships one stabilization
    // window later - late enough that everything it sent before
    // dying has drained, so reconstruction sees a settled picture.
    if (vControlled) {
        // The sweep fires as an explicit action so the explorer
        // covers pre- and post-stabilization interleavings.
        if (std::find(vSweepPending.begin(), vSweepPending.end(),
                      n) == vSweepPending.end())
            vSweepPending.push_back(n);
        return;
    }
    eq.scheduleIn([this, n] { homeSweepDead(n); },
                  params.crashSuspectDelay);
}

void
ConcurrentProtocol::rejoinNode(NodeId n)
{
    if (_aborted || !deadNodes.test(n))
        return;
    ++ctrs.rejoins;
    deadNodes.reset(n);
    trace(TraceEvent::Rejoin, n, n, 0, 0, 0);
    // The node comes back cold (all-Invalid cache) and simply
    // resumes its reference stream; every block it owned is being
    // (or has been) reconstructed by its home.
    issueNext(n);
}

void
ConcurrentProtocol::homeSweepDead(NodeId n)
{
    if (_aborted)
        return;
    // Runs even if the node already rejoined: it came back cold,
    // so its pre-crash ownerships are orphaned either way.
    for (HomeState &h : homes) {
        for (BlockId blk : h.mem.blockStore().ownedBy(n))
            startRecovery(h, blk, n);
        std::vector<BlockId> stuck;
        for (const auto &[blk, rel] : h.busyReleaser) {
            if (rel == n)
                stuck.push_back(blk);
        }
        for (BlockId blk : stuck)
            startRecovery(h, blk, n);
    }
}

void
ConcurrentProtocol::startRecovery(HomeState &h, BlockId blk,
                                  NodeId suspected)
{
    if (h.recovering.contains(blk))
        return;
    h.recovering.insert(blk);
    NodeId home = h.mem.port();
    trace(TraceEvent::Suspect, home, suspected, 0, blk, 0);

    RecoveryCtx ctx;
    // Fence: usurp the busy period with a fresh token so anything
    // the wedged transaction still has in flight can no longer
    // commit here, and park new requests behind the busy bit. A
    // live former releaser is remembered - it is stalled on a
    // serve that will never land and needs a restart hint.
    auto rel = h.busyReleaser.find(blk);
    if (rel != h.busyReleaser.end()) {
        if (!deadNodes.test(rel->second))
            ctx.suspecters.push_back(rel->second);
        h.busyReleaser.erase(rel);
    }
    h.busy.insert(blk);
    h.busyToken[blk] = ++h.busyTokenGen;
    h.busySince[blk] = eq.curTick();

    // Probe every live cache (including the home's own): each one
    // drops its copy / stale pointer and acknowledges; a surviving
    // owner ships its copy back.
    std::vector<NodeId> dests;
    for (NodeId c = 0; c < cpus.size(); ++c) {
        if (deadNodes.test(c))
            continue;
        ctx.pending.insert(c);
        if (c != home)
            dests.push_back(c);
    }
    h.recoveryCtx[blk] = std::move(ctx);
    sendMulticastMsg(MsgType::RecoveryPurge, home, dests, 0, blk,
                     0, 0, home);
    if (!deadNodes.test(home)) {
        Msg self;
        self.type = MsgType::RecoveryPurge;
        self.src = home;
        self.dst = home;
        self.blk = blk;
        self.requester = home;
        send(self);
    }
}

void
ConcurrentProtocol::finishRecovery(HomeState &h, BlockId blk)
{
    auto it = h.recoveryCtx.find(blk);
    if (it == h.recoveryCtx.end())
        return;
    RecoveryCtx ctx = std::move(it->second);
    h.recoveryCtx.erase(it);

    ++ctrs.rebuilds;
    trace(TraceEvent::Rebuild, h.mem.port(), 0, 0, blk, ctx.acks);

    if (ctx.haveData) {
        // A surviving owner's copy wins over memory, subject to
        // per-word durable stamps (a DurableWrite racing ahead of
        // the purge may carry a fresher word).
        for (unsigned off = 0;
             off < static_cast<unsigned>(ctx.data.size()); ++off)
            applyDurableWord(h, blk, off, ctx.data[off],
                             eq.curTick());
    }

    // Rebuild the directory root: no cached copies anywhere, so
    // the block store entry is simply cleared. The block re-enters
    // circulation in GR mode - the safe degraded mode, since a GR
    // owner never has to trust remote copies it did not create.
    h.mem.blockStore().clear(blk);
    h.recoveredGR.insert(blk);
    h.recovering.erase(blk);

    for (NodeId r : ctx.suspecters) {
        if (deadNodes.test(r))
            continue;
        // A suspecter whose request queued behind the fence needs
        // no restart hint: the drain below serves that request at
        // its current sequence number. Nacking it too would race
        // the restart against the serve - the serve would arrive
        // stale and be dropped while the block store already names
        // the suspecter as owner.
        const std::deque<Msg> *q = h.waiting.find(blk);
        bool queued = false;
        if (q) {
            for (const Msg &w : *q) {
                if (w.requester == r) {
                    queued = true;
                    break;
                }
            }
        }
        if (queued)
            continue;
        ++ctrs.recoveryNacks;
        Msg nack;
        nack.type = MsgType::RecoveryNack;
        nack.src = h.mem.port();
        nack.dst = r;
        nack.blk = blk;
        nack.requester = r;
        send(nack);
    }

    // Release the fence and serve whatever queued behind it.
    h.busyToken.erase(blk);
    h.busyReleaser.erase(blk);
    h.busySince.erase(blk);
    h.busy.erase(blk);
    drainHomeQueue(h, blk);
}

void
ConcurrentProtocol::restartPurgedTx(NodeId cpu, const Msg &m)
{
    CpuState &cs = cpus[cpu];
    ++ctrs.recoveryRestarts;
    if (m.flag) {
        // The intercepted serve carried a busy period; hand its
        // (stale) token back so the release is an explicit no-op
        // at the home rather than a leak.
        Msg ub;
        ub.type = MsgType::Unblock;
        ub.src = cpu;
        ub.dst = homeOf(m.blk);
        ub.toMemory = true;
        ub.blk = m.blk;
        ub.requester = cpu;
        ub.tok = m.tok;
        ub.flag = false;
        send(ub);
    }
    cs.purged.erase(m.blk);
    cs.attempts = 0;
    cs.pointerRetries = 0;
    cs.phase = Phase::Idle;
    disarmTimeout(cpu);
    startAccess(cpu);
}

void
ConcurrentProtocol::applyDurableWord(HomeState &h, BlockId blk,
                                     unsigned off,
                                     std::uint64_t value,
                                     Tick stamp)
{
    // Last-writer-wins by send tick. Within one owner the stamps
    // are its local commit order; across an ownership transfer the
    // new owner's first write is sent after the transfer arrived,
    // hence after every stamp the old owner issued.
    Addr a = params.geometry.baseOf(blk) + off;
    Tick *s = h.durableStamp.find(a);
    if (s && *s > stamp)
        return;
    h.durableStamp[a] = stamp;
    h.mem.writeWord(blk, off, value);
}

// ---------------------------------------------------------------
// Linearizability monitor
// ---------------------------------------------------------------

void
ConcurrentProtocol::monitorWritePending(Addr a, std::uint64_t v)
{
    pendingWrites[a].push_back(v);
}

void
ConcurrentProtocol::monitorWriteComplete(Addr a, std::uint64_t v)
{
    lastCompleted[a] = v;
    if (auto *pw = pendingWrites.find(a)) {
        auto vi = std::find(pw->begin(), pw->end(), v);
        if (vi != pw->end()) {
            *vi = pw->back();
            pw->pop_back();
        }
        if (pw->empty())
            pendingWrites.erase(a);
    }
}

void
ConcurrentProtocol::checkReadSample(Addr a, std::uint64_t v)
{
    const std::uint64_t *lc = lastCompleted.find(a);
    std::uint64_t completed = lc ? *lc : 0;
    if (v == completed)
        return;
    const auto *pw = pendingWrites.find(a);
    if (pw && std::find(pw->begin(), pw->end(), v) != pw->end())
        return;
    ++_valueErrors;
    warn("concurrent: read @%llu sampled %llu (completed %llu, "
         "no matching pending write)",
         static_cast<unsigned long long>(a),
         static_cast<unsigned long long>(v),
         static_cast<unsigned long long>(completed));
}

// ---------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------

ConcurrentRunResult
ConcurrentProtocol::run(workload::ReferenceStream &stream)
{
    workload::MemRef ref;
    std::uint64_t total = 0;
    while (stream.next(ref)) {
        panic_if(ref.cpu >= cpus.size(), "cpu out of range");
        cpus[ref.cpu].queue.push_back(ref);
        ++total;
    }
    refsOutstanding = total;

    if (crashEnabled()) {
        for (const auto &ev : params.crashPlan.events) {
            if (ev.node >= cpus.size())
                continue;
            NodeId n = ev.node;
            eq.schedule([this, n, restart = ev.restartTick] {
                crashNode(n, restart);
            }, ev.killTick);
            if (ev.restartTick > ev.killTick)
                eq.schedule([this, n] { rejoinNode(n); },
                            ev.restartTick);
        }
    }

    Bits start_bits = net.linkStats().totalBits();
    for (NodeId c = 0; c < cpus.size(); ++c)
        issueNext(c);

    if (params.watchdogPeriod > 0 && refsOutstanding > 0) {
        watchdogEv = eq.scheduleIn([this] { watchdogTick(); },
                                   params.watchdogPeriod);
        watchdogArmed = true;
    }

    eq.run();
    // Close the final (possibly partial) metrics window so short
    // runs and the report tool always see the full series.
    msampler.finish(eq.curTick());

    // A watchdog abort is a *reported* deadlock: the result carries
    // it and the caller decides. Anything else left hanging is an
    // engine bug.
    panic_if(refsOutstanding != 0 && !_aborted,
             "deadlock: %llu references never completed",
             static_cast<unsigned long long>(refsOutstanding));

    ConcurrentRunResult res;
    res.refs = total;
    res.makespan = eq.curTick();
    res.networkBits = net.linkStats().totalBits() - start_bits;
    res.valueErrors = _valueErrors;
    res.deadlocks = ctrs.watchdogDeadlocks;
    res.refsLost = ctrs.refsLost;
    res.avgReadLatency = readsDone
        ? readLatSum / static_cast<double>(readsDone) : 0;
    res.avgWriteLatency = writesDone
        ? writeLatSum / static_cast<double>(writesDone) : 0;
    return res;
}

} // namespace mscp::proto
