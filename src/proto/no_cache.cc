#include "no_cache.hh"

namespace mscp::proto
{

NoCacheProtocol::NoCacheProtocol(net::OmegaNetwork &network,
                                 MessageSizes sizes,
                                 unsigned block_words)
    : CoherenceProtocol(network, sizes), blockWords(block_words)
{
    for (unsigned i = 0; i < network.numPorts(); ++i)
        memories.emplace_back(static_cast<NodeId>(i), blockWords);
}

std::uint64_t
NoCacheProtocol::read(NodeId cpu, Addr addr)
{
    BlockId blk = addr / blockWords;
    auto off = static_cast<unsigned>(addr % blockWords);
    NodeId home = homeOf(blk);
    sendUnicast(MsgType::MemRead, cpu, home, 0);
    std::uint64_t v = memories[home].readWord(blk, off);
    sendUnicast(MsgType::MemReadReply, home, cpu, sizes.wordBits);
    goldenRead(addr, v);
    return v;
}

void
NoCacheProtocol::write(NodeId cpu, Addr addr, std::uint64_t value)
{
    BlockId blk = addr / blockWords;
    auto off = static_cast<unsigned>(addr % blockWords);
    NodeId home = homeOf(blk);
    sendUnicast(MsgType::MemWrite, cpu, home, sizes.wordBits);
    memories[home].writeWord(blk, off, value);
    goldenWrite(addr, value);
}

} // namespace mscp::proto
