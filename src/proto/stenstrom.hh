/**
 * @file
 * The paper's cache consistency protocol (Sec. 2), executable.
 *
 * State is distributed into the caches: the owner of a block holds
 * the present-flag vector and mode bit; non-owners in global-read
 * mode keep Invalid entries caching the OWNER identification; the
 * memory modules keep only the block store (valid bit + owner id).
 *
 * The engine implements every action of Sec. 2.2 - read hit/miss,
 * write hit/miss, block replacement (including the ownership
 * hand-off with ack/nack retries) and the two set-mode operations -
 * over the simulated omega network, so every protocol message is
 * accounted with the paper's link-bit cost metric.
 *
 * Decisions the paper leaves open (documented in DESIGN.md):
 *  - If every hand-off candidate nacks (exercised via the fault-
 *    injection hook), the evicting owner invalidates the remaining
 *    copies, writes back if modified and clears the block store.
 *  - After a hand-off the departing cache asks the new owner to
 *    clear its present flag with one direct control message.
 *  - A GR->DW mode switch drops the bystanders' OWNER pointers
 *    (one control multicast) so the present vector again tracks
 *    valid copies only.
 */

#ifndef MSCP_PROTO_STENSTROM_HH
#define MSCP_PROTO_STENSTROM_HH

#include <functional>
#include <vector>

#include "cache/cache_array.hh"
#include "mem/memory_module.hh"
#include "proto/protocol.hh"

namespace mscp::proto
{

/** Event counters specific to the Stenstrom engine. */
struct StenstromCounters
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readHits = 0;
    std::uint64_t readMissUncached = 0;  ///< no copy anywhere
    std::uint64_t readMissOwnedDW = 0;   ///< copy loaded from owner
    std::uint64_t readMissOwnedGR = 0;   ///< datum via memory module
    std::uint64_t readMissPointerGR = 0; ///< datum via OWNER bypass
    std::uint64_t writeHitExcl = 0;
    std::uint64_t writeHitNonExclDW = 0;
    std::uint64_t writeHitNonExclGR = 0;
    std::uint64_t writeHitUnOwned = 0;   ///< ownership acquired
    std::uint64_t writeMissUncached = 0;
    std::uint64_t writeMissOwned = 0;
    std::uint64_t ownershipTransfers = 0;
    std::uint64_t replacements = 0;
    std::uint64_t replOwnedExcl = 0;
    std::uint64_t replOwnedNonExcl = 0;
    std::uint64_t replUnOwned = 0;
    std::uint64_t replInvalid = 0;
    std::uint64_t handoffNacks = 0;
    std::uint64_t handoffFallbacks = 0;
    std::uint64_t dwUpdates = 0;     ///< distributed-write multicasts
    std::uint64_t invalidations = 0;
    std::uint64_t ownerAnnounces = 0;
    std::uint64_t modeSwitches = 0;
    std::uint64_t writeBacks = 0;
};

/** Configuration of the engine. */
struct StenstromParams
{
    /** Cache shape (same for every cache). */
    cache::Geometry geometry;
    /** Multicast scheme for updates/invalidations/announcements. */
    net::Scheme multicastScheme = net::Scheme::Combined;
    /** Mode given to a block on first caching (paper: global read). */
    cache::Mode defaultMode = cache::Mode::GlobalRead;
    /** Wire sizes. */
    MessageSizes sizes;
    /**
     * Optional per-multicast scheme choice (Sec. 5's break-even
     * registers): called with the destination count; overrides
     * multicastScheme when set.
     */
    std::function<net::Scheme(unsigned num_dests)> schemePolicy;
};

/** Atomic engine for the two-mode protocol. */
class StenstromProtocol : public CoherenceProtocol
{
  public:
    StenstromProtocol(net::OmegaNetwork &network,
                      StenstromParams params);

    std::uint64_t read(NodeId cpu, Addr addr) override;
    void write(NodeId cpu, Addr addr, std::uint64_t value) override;
    std::string protoName() const override { return "stenstrom"; }

    /**
     * Software-controlled mode change (Sec. 2.2 items 6/7).
     * Acquires ownership for @p cpu first if needed.
     */
    void setMode(NodeId cpu, Addr addr, cache::Mode mode);

    /** Current mode of a block, if it is owned anywhere. */
    bool blockMode(Addr addr, cache::Mode &mode) const;

    /** Current owner of a block, or invalidNode. */
    NodeId ownerOf(Addr addr) const;

    /**
     * Size of the owner's present set (holders including the owner),
     * or 0 if the block is not cached.
     */
    unsigned presentCount(Addr addr) const;

    const StenstromCounters &counters() const { return ctrs; }

    /** @{ introspection for checkers and tests */
    unsigned numCaches() const
    {
        return static_cast<unsigned>(caches.size());
    }
    const cache::CacheArray &cacheArray(NodeId c) const
    {
        return caches[c];
    }
    const mem::MemoryModule &memoryModule(unsigned i) const
    {
        return memories[i];
    }
    const cache::Geometry &geometry() const
    {
        return params.geometry;
    }
    /** @} */

    /**
     * Fault-injection hook for the replacement hand-off: return
     * true to make candidate @p cand nack the ownership offer for
     * @p block. Used by tests to exercise the retry loop and the
     * all-nack fallback.
     */
    using NackInjector = std::function<bool(NodeId cand,
                                            BlockId block)>;
    void setNackInjector(NackInjector fn) { nackInjector = fn; }

    /** Home memory module (co-located port) of a block. */
    NodeId
    homeOf(BlockId block) const
    {
        return static_cast<NodeId>(block % memories.size());
    }

  private:
    using Entry = cache::Entry;
    using State = cache::State;
    using Mode = cache::Mode;

    /** @{ protocol actions (Sec. 2.2) */
    std::uint64_t readMissNoEntry(NodeId cpu, BlockId blk,
                                  unsigned off);
    std::uint64_t readMissPointer(NodeId cpu, Entry &e, BlockId blk,
                                  unsigned off);
    void writeOwned(NodeId cpu, Entry &e, BlockId blk, unsigned off,
                    std::uint64_t value);
    void acquireFromUnOwned(NodeId cpu, Entry &e, BlockId blk);
    Entry &writeMissAcquire(NodeId cpu, BlockId blk);
    void replaceVictim(NodeId cpu, Entry &victim);
    bool handoffOwnership(NodeId cpu, Entry &victim);
    void allNackFallback(NodeId cpu, Entry &victim);
    /** @} */

    /**
     * Get the entry @p blk will use at @p cpu, running the
     * replacement protocol on a victim if necessary, then
     * installing the tag.
     */
    Entry &allocateEntry(NodeId cpu, BlockId blk);

    /** Owner-side entry, asserting protocol invariants. */
    Entry &ownerEntry(NodeId owner, BlockId blk);

    /** Present-set members other than @p self. */
    std::vector<NodeId> othersPresent(const Entry &e,
                                      NodeId self) const;

    /** Scheme for a multicast of @p n destinations. */
    net::Scheme chooseScheme(unsigned n) const;

    /** Collapse to exclusive when the present set is only self. */
    void maybeExclusive(Entry &e, NodeId self);

    StenstromParams params;
    StenstromCounters ctrs;
    std::vector<cache::CacheArray> caches;
    std::vector<mem::MemoryModule> memories;
    NackInjector nackInjector;
};

} // namespace mscp::proto

#endif // MSCP_PROTO_STENSTROM_HH
