#include "explorer.hh"

#include <ostream>
#include <sstream>
#include <unordered_set>

#include "proto/message.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "verify/canon.hh"

namespace mscp::verify
{

namespace
{

/** Silence engine logging for the scope (exploration visits
 *  panic-adjacent states on purpose; stderr noise is not output). */
class SilenceLogging
{
  public:
    SilenceLogging() : saved(logLevel())
    {
        setLogLevel(LogLevel::Silent);
    }
    ~SilenceLogging() { setLogLevel(saved); }

  private:
    LogLevel saved;
};

std::string
describeAction(const Action &a)
{
    if (a.kind == ActionKind::Deliver) {
        return csprintf("deliver %s %s%u -> %s%u blk=%llu seq=%llu",
                        proto::msgTypeName(
                            static_cast<proto::MsgType>(a.msgType)),
                        a.srcIsMem ? "home" : "cpu",
                        static_cast<unsigned>(a.src),
                        a.toMemory ? "home" : "cpu",
                        static_cast<unsigned>(a.dst),
                        static_cast<unsigned long long>(a.blk),
                        static_cast<unsigned long long>(a.seq));
    }
    return csprintf("%s %s%u", actionKindName(a.kind),
                    a.kind == ActionKind::Sweep ? "node" : "cpu",
                    static_cast<unsigned>(a.node));
}

} // anonymous namespace

Explorer::Explorer(const VerifyConfig &cfg_) : cfg(cfg_) {}

std::string
Explorer::kindOf(const std::string &err)
{
    auto pos = err.find(':');
    return pos == std::string::npos ? err : err.substr(0, pos);
}

ExploreResult
Explorer::explore()
{
    SilenceLogging silent;
    ExploreResult res;
    EngineGateway gw(cfg);

    struct Frame
    {
        std::vector<Action> acts;
        std::size_t next = 0;
    };

    std::unordered_set<Hash128, Hash128Hasher> seen;
    std::vector<Frame> frames;
    std::vector<Action> path;
    bool engineDirty = false;

    seen.insert(hashBytes(gw.canonical()));
    res.states = 1;
    frames.push_back({gw.enabledActions(), 0});
    if (frames.back().acts.empty() && gw.refsOutstanding() > 0) {
        Violation v;
        v.kind = "deadlock";
        v.details.push_back(
            "initial state has outstanding references and no "
            "enabled action");
        res.violations.push_back(v);
        return res;
    }

    auto fail = [&](std::string kind,
                    std::vector<std::string> details) {
        Violation v;
        v.kind = std::move(kind);
        v.details = std::move(details);
        v.path = path;
        res.violations.push_back(std::move(v));
    };

    while (!frames.empty()) {
        Frame &f = frames.back();
        if (f.next >= f.acts.size()) {
            frames.pop_back();
            if (!path.empty()) {
                path.pop_back();
                engineDirty = true;
            }
            continue;
        }
        const Action a = f.acts[f.next++];

        if (engineDirty) {
            gw.reset();
            for (const Action &p : path)
                gw.apply(p);
            engineDirty = false;
        }

        bool panicked = false;
        std::string panicMsg;
        try {
            gw.apply(a);
        } catch (const PanicError &pe) {
            panicked = true;
            panicMsg = pe.message;
        }
        ++res.edges;
        path.push_back(a);
        res.maxDepthReached = std::max(
            res.maxDepthReached,
            static_cast<unsigned>(path.size()));

        if (panicked) {
            fail("panic", {panicMsg});
            return res;
        }
        if (gw.valueErrors() > 0) {
            fail("value",
                 {csprintf("%llu linearizability value error(s)",
                           static_cast<unsigned long long>(
                               gw.valueErrors()))});
            return res;
        }
        if (gw.settled()) {
            ++res.settledStates;
            auto errs = gw.checkInvariants();
            if (!errs.empty()) {
                fail(kindOf(errs[0]), errs);
                return res;
            }
        }

        std::vector<Action> acts = gw.enabledActions();
        if (acts.empty() && gw.refsOutstanding() > 0) {
            fail("deadlock",
                 {csprintf("%llu reference(s) outstanding with no "
                           "enabled action",
                           static_cast<unsigned long long>(
                               gw.refsOutstanding()))});
            return res;
        }

        Hash128 h = hashBytes(gw.canonical());
        if (!seen.insert(h).second) {
            ++res.prunedSeen;
            path.pop_back();
            engineDirty = true;
            continue;
        }
        ++res.states;
        if (res.states >= cfg.opt.maxStates) {
            res.budgetExhausted = true;
            break;
        }
        if (path.size() >= cfg.opt.maxDepth) {
            ++res.prunedDepth;
            path.pop_back();
            engineDirty = true;
            continue;
        }
        frames.push_back({std::move(acts), 0});
    }

    res.complete = res.violations.empty() && !res.budgetExhausted &&
                   res.prunedDepth == 0;
    return res;
}

bool
Explorer::reproduces(EngineGateway &gw,
                     const std::vector<Action> &actions,
                     const std::string &kind)
{
    gw.reset();
    for (const Action &a : actions) {
        bool applied = false;
        try {
            applied = gw.applyIfEnabled(a);
        } catch (const PanicError &) {
            return kind == "panic";
        }
        if (!applied)
            return false;
        if (gw.valueErrors() > 0 && kind == "value")
            return true;
        if (gw.settled()) {
            for (const std::string &err : gw.checkInvariants())
                if (kindOf(err) == kind)
                    return true;
        }
        if (kind == "deadlock" && gw.refsOutstanding() > 0 &&
            gw.enabledActions().empty())
            return true;
    }
    return false;
}

std::vector<Action>
Explorer::minimize(const Violation &v)
{
    SilenceLogging silent;
    EngineGateway gw(cfg);
    std::vector<Action> cur = v.path;

    // Single-removal delta debugging to fixpoint: drop any one
    // action whose removal still replays to the same violation
    // kind. Quadratic in path length, which minimized paths keep
    // small; determinism of the replay makes the result stable.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < cur.size(); ++i) {
            std::vector<Action> cand;
            cand.reserve(cur.size() - 1);
            for (std::size_t j = 0; j < cur.size(); ++j)
                if (j != i)
                    cand.push_back(cur[j]);
            if (reproduces(gw, cand, v.kind)) {
                cur = std::move(cand);
                changed = true;
                break;
            }
        }
    }
    return cur;
}

std::string
Explorer::renderViolation(const VerifyConfig &cfg,
                          const Violation &v,
                          const std::vector<Action> &minimized)
{
    std::ostringstream os;
    os << "mscp-verify counterexample\n";
    os << csprintf(
        "config: %s nodes=%u mode=%s geometry=%ux%ux%u blocks=%llu "
        "fifo=%d symmetry=%d timeoutBase=%llu maxRetries=%u "
        "crashBudget=%u rejoin=%d\n",
        cfg.name.c_str(), cfg.nodes,
        cfg.mode == cache::Mode::DistributedWrite ? "dw" : "gr",
        cfg.geometry.blockWords, cfg.geometry.numSets,
        cfg.geometry.assoc,
        static_cast<unsigned long long>(cfg.numBlocks()),
        cfg.opt.fifoChannels ? 1 : 0, cfg.opt.symmetry ? 1 : 0,
        static_cast<unsigned long long>(cfg.opt.timeoutBase),
        cfg.opt.maxRetries, cfg.opt.crashBudget,
        cfg.opt.allowRejoin ? 1 : 0);
    os << "violation: " << v.kind << "\n";
    for (const std::string &d : v.details)
        os << "detail: " << d << "\n";
    os << csprintf("steps: %zu (minimized from %zu)\n",
                   minimized.size(), v.path.size());
    for (std::size_t i = 0; i < minimized.size(); ++i)
        os << csprintf("  %zu. %s\n", i + 1,
                       describeAction(minimized[i]).c_str());
    return os.str();
}

void
Explorer::exportTrace(const VerifyConfig &cfg,
                      const std::vector<Action> &path,
                      std::ostream &os)
{
    SilenceLogging silent;
    EngineGateway gw(cfg, /*with_trace=*/true);
    for (std::size_t i = 0; i < path.size(); ++i) {
        gw.markAction(path[i], i + 1);
        try {
            if (!gw.applyIfEnabled(path[i]))
                break;
        } catch (const PanicError &) {
            break; // the violating step itself; recording is done
        }
    }
    exportChromeTrace(os, gw.tracer());
}

} // namespace mscp::verify
