#include "explorer.hh"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "proto/message.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "verify/canon.hh"
#include "verify/liveness.hh"
#include "verify/por.hh"

namespace mscp::verify
{

namespace
{

/** Silence engine logging for the scope (exploration visits
 *  panic-adjacent states on purpose; stderr noise is not output). */
class SilenceLogging
{
  public:
    SilenceLogging() : saved(logLevel())
    {
        setLogLevel(LogLevel::Silent);
    }
    ~SilenceLogging() { setLogLevel(saved); }

  private:
    LogLevel saved;
};

std::string
describeAction(const Action &a)
{
    if (a.kind == ActionKind::Deliver) {
        return csprintf("deliver %s %s%u -> %s%u blk=%llu seq=%llu",
                        proto::msgTypeName(
                            static_cast<proto::MsgType>(a.msgType)),
                        a.srcIsMem ? "home" : "cpu",
                        static_cast<unsigned>(a.src),
                        a.toMemory ? "home" : "cpu",
                        static_cast<unsigned>(a.dst),
                        static_cast<unsigned long long>(a.blk),
                        static_cast<unsigned long long>(a.seq));
    }
    return csprintf("%s %s%u", actionKindName(a.kind),
                    a.kind == ActionKind::Sweep ? "node" : "cpu",
                    static_cast<unsigned>(a.node));
}

/** Deterministic total order for the commutation normal form. */
bool
actionBefore(const Action &x, const Action &y)
{
    auto key = [](const Action &a) {
        return std::make_tuple(
            static_cast<unsigned>(a.kind),
            static_cast<unsigned>(a.node),
            static_cast<unsigned>(a.msgType),
            static_cast<unsigned>(a.src),
            static_cast<unsigned>(a.dst),
            static_cast<unsigned>(a.srcIsMem),
            static_cast<unsigned>(a.toMemory), a.blk, a.seq, a.fp);
    };
    return key(x) < key(y);
}

/** Order-independent mixer for the settled-coverage digest. */
std::uint64_t
mixHash(const Hash128 &h)
{
    std::uint64_t v = h.lo ^ (h.hi * 0x9e3779b97f4a7c15ull);
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    return v;
}

} // anonymous namespace

Explorer::Explorer(const VerifyConfig &cfg_) : cfg(cfg_) {}

std::string
Explorer::kindOf(const std::string &err)
{
    auto pos = err.find(':');
    return pos == std::string::npos ? err : err.substr(0, pos);
}

ExploreResult
Explorer::explore()
{
    SilenceLogging silent;
    ExploreResult res;
    EngineGateway gw(cfg);
    const bool por = cfg.opt.por;

    /** Sleep-set signature a state was (last) explored under; a
     *  revisit whose sleep set is a superset explores nothing new
     *  and prunes. Empty in full mode, so revisits always prune
     *  and the exploration is the exact pre-POR DFS. */
    struct StoredSleep
    {
        std::vector<std::uint64_t> keys; // sorted
    };

    struct Frame
    {
        std::vector<Action> acts;
        std::vector<ActionFootprint> fps; // parallel to acts
        std::vector<Action> deferred;     // enabled \ ample
        std::vector<ActionFootprint> deferredFps;
        std::vector<SleepEntry> sleepIn;  // sorted by key
        Hash128 h{};
        std::size_t next = 0;
    };

    std::unordered_map<Hash128, StoredSleep, Hash128Hasher> seen;
    std::unordered_map<Hash128, unsigned, Hash128Hasher> onStack;
    std::unordered_set<Hash128, Hash128Hasher> settledSeen;
    std::vector<Frame> frames;
    std::vector<Action> path;
    bool engineDirty = false;

    auto sleepHas = [](const std::vector<SleepEntry> &sleep,
                       std::uint64_t key) {
        auto it = std::lower_bound(
            sleep.begin(), sleep.end(), key,
            [](const SleepEntry &e, std::uint64_t k) {
                return e.key < k;
            });
        return it != sleep.end() && it->key == key;
    };

    // Build a frame for the state the gateway currently sits in
    // (footprints inspect engine internals, so this must run before
    // the DFS moves on).
    auto buildFrame = [&](Hash128 h, std::vector<Action> &&enabled,
                          std::vector<SleepEntry> &&sleepIn) {
        Frame f;
        f.h = h;
        f.sleepIn = std::move(sleepIn);
        for (Action &a : enabled) {
            if (por && sleepHas(f.sleepIn, actionKey(a)))
                continue; // covered by an explored sibling branch
            f.fps.push_back(por ? gw.footprint(a)
                                : ActionFootprint{});
            f.acts.push_back(std::move(a));
        }
        if (por) {
            // Ample set = every non-Deliver action plus the
            // smallest dependence-closed cluster of Delivers; the
            // remaining Deliver clusters defer.  Restricting the
            // reduction to in-flight messages is what keeps it
            // sound here: components are always input-enabled, so
            // a deferred Issue/Timeout/Crash could react to state
            // the ample moves create (the classic C1 leak -- an
            // unrestricted smallest-cluster rule loses terminal
            // settled states on the eviction config).  Deferred
            // Delivers, by contrast, are concrete queued messages
            // whose footprints are fixed at enqueue time, and the
            // self-checking sweep audit (--por-audit) re-validates
            // the verdict and the settled-state digests against a
            // full run on every exhaustible config.
            std::vector<std::size_t> deliverIdx;
            std::vector<ActionFootprint> deliverFps;
            for (std::size_t i = 0; i < f.acts.size(); ++i) {
                if (f.acts[i].kind == ActionKind::Deliver) {
                    deliverIdx.push_back(i);
                    deliverFps.push_back(f.fps[i]);
                }
            }
            std::vector<std::size_t> sub = ampleCluster(deliverFps);
            if (!sub.empty()) {
                std::vector<bool> keep(f.acts.size(), true);
                for (std::size_t i : deliverIdx)
                    keep[i] = false;
                for (std::size_t k : sub)
                    keep[deliverIdx[k]] = true;
                std::vector<Action> acts;
                std::vector<ActionFootprint> fps;
                for (std::size_t i = 0; i < f.acts.size(); ++i) {
                    if (keep[i]) {
                        acts.push_back(std::move(f.acts[i]));
                        fps.push_back(f.fps[i]);
                    } else {
                        f.deferred.push_back(std::move(f.acts[i]));
                        f.deferredFps.push_back(f.fps[i]);
                    }
                }
                f.acts = std::move(acts);
                f.fps = std::move(fps);
            }
        }
        return f;
    };

    Hash128 rootH = hashBytes(gw.canonical());
    seen.emplace(rootH, StoredSleep{});
    res.states = 1;
    {
        std::vector<Action> acts = gw.enabledActions();
        if (acts.empty() && gw.refsOutstanding() > 0) {
            Violation v;
            v.kind = "deadlock";
            v.details.push_back(
                "initial state has outstanding references and no "
                "enabled action");
            res.violations.push_back(v);
            return res;
        }
        frames.push_back(buildFrame(rootH, std::move(acts), {}));
        ++onStack[rootH];
    }

    auto fail = [&](std::string kind,
                    std::vector<std::string> details) {
        Violation v;
        v.kind = std::move(kind);
        v.details = std::move(details);
        v.path = path;
        res.violations.push_back(std::move(v));
    };

    while (!frames.empty()) {
        Frame &f = frames.back();
        if (f.next >= f.acts.size()) {
            auto os = onStack.find(f.h);
            if (os != onStack.end() && --os->second == 0)
                onStack.erase(os);
            frames.pop_back();
            if (!path.empty()) {
                path.pop_back();
                engineDirty = true;
            }
            continue;
        }
        const std::size_t ai = f.next++;
        const Action a = f.acts[ai];

        if (engineDirty) {
            gw.reset();
            for (const Action &p : path)
                gw.apply(p);
            engineDirty = false;
        }

        bool panicked = false;
        std::string panicMsg;
        try {
            gw.apply(a);
        } catch (const PanicError &pe) {
            panicked = true;
            panicMsg = pe.message;
        }
        ++res.edges;
        path.push_back(a);
        res.maxDepthReached = std::max(
            res.maxDepthReached,
            static_cast<unsigned>(path.size()));

        if (panicked) {
            fail("panic", {panicMsg});
            return res;
        }
        if (gw.valueErrors() > 0) {
            fail("value",
                 {csprintf("%llu linearizability value error(s)",
                           static_cast<unsigned long long>(
                               gw.valueErrors()))});
            return res;
        }

        Hash128 h = hashBytes(gw.canonical());
        if (gw.settled()) {
            ++res.settledStates;
            if (settledSeen.insert(h).second) {
                ++res.settledUnique;
                res.settledDigest ^= mixHash(h);
            }
            auto errs = gw.checkInvariants();
            if (!errs.empty()) {
                fail(kindOf(errs[0]), errs);
                return res;
            }
        }

        std::vector<Action> acts = gw.enabledActions();
        if (acts.empty() && gw.refsOutstanding() > 0) {
            fail("deadlock",
                 {csprintf("%llu reference(s) outstanding with no "
                           "enabled action",
                           static_cast<unsigned long long>(
                               gw.refsOutstanding()))});
            return res;
        }

        // Cycle proviso: an ample successor closing a DFS cycle
        // could postpone a deferred action forever around that
        // cycle; re-expand the frame in full.
        if (por && !f.deferred.empty() && onStack.count(h) > 0) {
            for (std::size_t i = 0; i < f.deferred.size(); ++i) {
                f.acts.push_back(std::move(f.deferred[i]));
                f.fps.push_back(f.deferredFps[i]);
            }
            f.deferred.clear();
            f.deferredFps.clear();
        }

        // Sleep set of the successor: everything asleep here plus
        // the already-explored siblings, minus whatever the taken
        // action wakes (dependence).
        std::vector<SleepEntry> childSleep;
        if (por) {
            const ActionFootprint &afp = f.fps[ai];
            for (const SleepEntry &s : f.sleepIn)
                if (!dependent(s.fp, afp))
                    childSleep.push_back(s);
            for (std::size_t j = 0; j < ai; ++j)
                if (!dependent(f.fps[j], afp))
                    childSleep.push_back(
                        {actionKey(f.acts[j]), f.fps[j]});
            std::sort(childSleep.begin(), childSleep.end(),
                      [](const SleepEntry &x, const SleepEntry &y) {
                          return x.key < y.key;
                      });
            childSleep.erase(
                std::unique(childSleep.begin(), childSleep.end(),
                            [](const SleepEntry &x,
                               const SleepEntry &y) {
                                return x.key == y.key;
                            }),
                childSleep.end());
        }

        auto it = seen.find(h);
        if (it != seen.end()) {
            // Revisit. Prune unless this visit carries a strictly
            // smaller sleep set than the state was explored under
            // (then transitions slept through before must run:
            // shrink the stored set and re-explore).
            bool superset = true;
            if (por) {
                for (std::uint64_t k : it->second.keys) {
                    if (!sleepHas(childSleep, k)) {
                        superset = false;
                        break;
                    }
                }
            }
            if (superset) {
                ++res.prunedSeen;
                path.pop_back();
                engineDirty = true;
                continue;
            }
            std::vector<std::uint64_t> inter;
            for (std::uint64_t k : it->second.keys)
                if (sleepHas(childSleep, k))
                    inter.push_back(k);
            it->second.keys = std::move(inter);
        } else {
            StoredSleep st;
            for (const SleepEntry &s : childSleep)
                st.keys.push_back(s.key);
            seen.emplace(h, std::move(st));
            ++res.states;
            if (res.states >= cfg.opt.maxStates) {
                res.budgetExhausted = true;
                break;
            }
        }
        if (path.size() >= cfg.opt.maxDepth) {
            ++res.prunedDepth;
            path.pop_back();
            engineDirty = true;
            continue;
        }
        frames.push_back(
            buildFrame(h, std::move(acts), std::move(childSleep)));
        ++onStack[h];
    }

    res.complete = res.violations.empty() && !res.budgetExhausted &&
                   res.prunedDepth == 0;
    return res;
}

bool
Explorer::reproduces(EngineGateway &gw,
                     const std::vector<Action> &actions,
                     const std::string &kind)
{
    gw.reset();
    for (const Action &a : actions) {
        bool applied = false;
        try {
            applied = gw.applyIfEnabled(a);
        } catch (const PanicError &) {
            return kind == "panic";
        }
        if (!applied)
            return false;
        if (gw.valueErrors() > 0 && kind == "value")
            return true;
        if (gw.settled()) {
            for (const std::string &err : gw.checkInvariants())
                if (kindOf(err) == kind)
                    return true;
        }
        if (kind == "deadlock" && gw.refsOutstanding() > 0 &&
            gw.enabledActions().empty())
            return true;
    }
    return false;
}

void
Explorer::normalizeTrace(EngineGateway &gw,
                         std::vector<Action> &cur,
                         const std::string &kind)
{
    // Bubble adjacent actions toward the canonical order whenever
    // the swapped path still reproduces. Independent schedules of
    // the same fault (a POR run enumerates interleavings in a
    // different order than a full run) converge to one normal
    // form; a swap that breaks reproduction is simply rejected, so
    // correctness never rests on the independence relation here.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i + 1 < cur.size(); ++i) {
            if (!actionBefore(cur[i + 1], cur[i]))
                continue;
            std::swap(cur[i], cur[i + 1]);
            if (reproduces(gw, cur, kind))
                changed = true;
            else
                std::swap(cur[i], cur[i + 1]);
        }
    }
}

Violation
Explorer::minimize(const Violation &v)
{
    if (v.kind == "livelock")
        return minimizeLasso(cfg, v);

    SilenceLogging silent;
    EngineGateway gw(cfg);
    std::vector<Action> cur = v.path;

    // Single-removal delta debugging to fixpoint: drop any one
    // action whose removal still replays to the same violation
    // kind. Quadratic in path length, which minimized paths keep
    // small; determinism of the replay makes the result stable.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < cur.size(); ++i) {
            std::vector<Action> cand;
            cand.reserve(cur.size() - 1);
            for (std::size_t j = 0; j < cur.size(); ++j)
                if (j != i)
                    cand.push_back(cur[j]);
            if (reproduces(gw, cand, v.kind)) {
                cur = std::move(cand);
                changed = true;
                break;
            }
        }
    }
    normalizeTrace(gw, cur, v.kind);
    Violation out;
    out.kind = v.kind;
    out.details = v.details;
    out.path = std::move(cur);
    return out;
}

std::string
Explorer::renderViolation(const VerifyConfig &cfg,
                          const Violation &v,
                          const Violation &minimized)
{
    std::ostringstream os;
    os << "mscp-verify counterexample\n";
    os << csprintf(
        "config: %s nodes=%u mode=%s geometry=%ux%ux%u blocks=%llu "
        "fifo=%d symmetry=%d timeoutBase=%llu maxRetries=%u "
        "crashBudget=%u rejoin=%d\n",
        cfg.name.c_str(), cfg.nodes,
        cfg.mode == cache::Mode::DistributedWrite ? "dw" : "gr",
        cfg.geometry.blockWords, cfg.geometry.numSets,
        cfg.geometry.assoc,
        static_cast<unsigned long long>(cfg.numBlocks()),
        cfg.opt.fifoChannels ? 1 : 0, cfg.opt.symmetry ? 1 : 0,
        static_cast<unsigned long long>(cfg.opt.timeoutBase),
        cfg.opt.maxRetries, cfg.opt.crashBudget,
        cfg.opt.allowRejoin ? 1 : 0);
    os << "violation: " << v.kind << "\n";
    for (const std::string &d : v.details)
        os << "detail: " << d << "\n";
    os << csprintf("steps: %zu (minimized from %zu)\n",
                   minimized.path.size(), v.path.size());
    for (std::size_t i = 0; i < minimized.path.size(); ++i)
        os << csprintf("  %zu. %s\n", i + 1,
                       describeAction(minimized.path[i]).c_str());
    if (!minimized.cycle.empty()) {
        os << csprintf(
            "cycle: %zu step(s), repeating forever (minimized "
            "from %zu)\n",
            minimized.cycle.size(), v.cycle.size());
        for (std::size_t i = 0; i < minimized.cycle.size(); ++i)
            os << csprintf(
                "  %zu. %s\n", minimized.path.size() + i + 1,
                describeAction(minimized.cycle[i]).c_str());
    }
    return os.str();
}

void
Explorer::exportTrace(const VerifyConfig &cfg,
                      const std::vector<Action> &path,
                      std::ostream &os)
{
    SilenceLogging silent;
    EngineGateway gw(cfg, /*with_trace=*/true);
    for (std::size_t i = 0; i < path.size(); ++i) {
        gw.markAction(path[i], i + 1);
        try {
            if (!gw.applyIfEnabled(path[i]))
                break;
        } catch (const PanicError &) {
            break; // the violating step itself; recording is done
        }
    }
    exportChromeTrace(os, gw.tracer());
}

} // namespace mscp::verify
