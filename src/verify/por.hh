/**
 * @file
 * Partial-order reduction for the controlled-mode explorer.
 *
 * Two actions are independent when neither can enable, disable or
 * change the effect of the other in any state where both are
 * enabled. For this engine that is a static footprint check:
 *
 *  - every non-global action executes inside exactly one *component*
 *    (the cpu it runs at, or the home a memory-bound message is
 *    delivered to) and only appends to message streams *originating*
 *    at that component, so actions on disjoint components can only
 *    interact through the linearizability monitor;
 *  - the monitor is keyed by block: a sampling read and a pending/
 *    completed-write update on the same block do not commute (that
 *    race is exactly what the value check is for), two reads do;
 *  - Sweep/Crash/Rejoin mutate cross-component state (deadNodes,
 *    recovery fences) and are global, i.e. dependent on everything.
 *
 * The explorer uses the relation two ways: *ample sets* (expand only
 * one dependence-closed cluster of the enabled set, with the
 * standard cycle proviso: a reduced state whose successor closes a
 * DFS cycle is re-expanded in full) and *sleep sets* (an action
 * independent of the path taken since its sibling branch explored
 * it is not re-explored), with stored-sleep intersection on revisits
 * so state caching stays exact. Both are heuristics over a
 * hand-derived relation; `verify_sweep --por-audit` re-runs every
 * exhaustible config unreduced and asserts identical verdicts and
 * identical settled-state coverage, so the reduction is
 * self-checking rather than trusted (DESIGN.md 5j).
 */

#ifndef MSCP_VERIFY_POR_HH
#define MSCP_VERIFY_POR_HH

#include <cstdint>
#include <type_traits>
#include <vector>

namespace mscp::verify
{

struct Action;

/**
 * Static read/write footprint of one action. POD with fixed-width
 * members (pinned by tools/lint_pods.py check 8): the explorer
 * stores one per frame slot and per sleep-set entry.
 */
struct ActionFootprint
{
    /** Component bits: cpu role c = bit c, home role h = bit
     *  32 + h (node counts are <= 32 in every verify config). */
    std::uint64_t comps = 0;
    /** Monitor block the action may sample or update. */
    std::uint64_t monBlk = 0;
    std::uint8_t hasMon = 0;   ///< touches the monitor at all
    std::uint8_t monWrite = 0; ///< pending/completed-write update
    std::uint8_t global = 0;   ///< dependent on everything
    std::uint8_t pad0 = 0;
    std::uint32_t pad1 = 0;
};

static_assert(sizeof(ActionFootprint) == 24,
              "ActionFootprint layout drifted");
static_assert(std::is_trivially_copyable_v<ActionFootprint>,
              "ActionFootprint must stay trivially copyable");

/** One sleep-set entry: a not-to-be-re-explored action, identified
 *  by its stable key, plus the footprint that decides whether a
 *  taken action wakes it. */
struct SleepEntry
{
    std::uint64_t key = 0;
    ActionFootprint fp;
};

/** Whether two actions may interfere (see file header). */
bool dependent(const ActionFootprint &a, const ActionFootprint &b);

/**
 * Stable identity of an action across states on one exploration
 * path: content fingerprint for Deliver (the same in-flight message
 * keeps its fingerprint until delivered), (kind, node) otherwise.
 */
std::uint64_t actionKey(const Action &a);

/**
 * Ample-set selection: partition the enabled actions into
 * dependence-connected clusters and pick the smallest (ties to the
 * cluster holding the earliest action, for determinism). Returns
 * the chosen cluster's indices, or an empty vector when no
 * reduction applies (a single cluster, or any global action).
 */
std::vector<std::size_t>
ampleCluster(const std::vector<ActionFootprint> &fps);

} // namespace mscp::verify

#endif // MSCP_VERIFY_POR_HH
