#include "por.hh"

#include <numeric>

#include "verify/state.hh"

namespace mscp::verify
{

bool
dependent(const ActionFootprint &a, const ActionFootprint &b)
{
    if (a.global || b.global)
        return true;
    if ((a.comps & b.comps) != 0)
        return true;
    if (a.hasMon && b.hasMon && a.monBlk == b.monBlk &&
        (a.monWrite || b.monWrite))
        return true;
    return false;
}

std::uint64_t
actionKey(const Action &a)
{
    if (a.kind == ActionKind::Deliver)
        return a.fp;
    return (static_cast<std::uint64_t>(a.kind) << 32) |
           static_cast<std::uint64_t>(a.node);
}

std::vector<std::size_t>
ampleCluster(const std::vector<ActionFootprint> &fps)
{
    const std::size_t n = fps.size();
    if (n < 2)
        return {};
    for (const ActionFootprint &f : fps)
        if (f.global)
            return {};

    // Union-find over pairwise dependence: clusters are closed
    // under dependence by construction, so expanding one defers
    // whole others.
    std::vector<std::size_t> parent(n);
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    auto find = [&parent](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (dependent(fps[i], fps[j]))
                parent[find(i)] = find(j);
        }
    }

    std::vector<std::size_t> size(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        ++size[find(i)];

    // Smallest cluster wins; among equals, the one whose first
    // member enumerates earliest (deterministic across runs).
    std::size_t bestRoot = n;
    std::size_t bestSize = 0;
    std::vector<bool> seenRoot(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = find(i);
        if (seenRoot[r])
            continue;
        seenRoot[r] = true;
        if (bestRoot == n || size[r] < bestSize) {
            bestRoot = r;
            bestSize = size[r];
        }
    }
    if (bestSize == n)
        return {}; // one cluster: no reduction
    std::vector<std::size_t> out;
    out.reserve(bestSize);
    for (std::size_t i = 0; i < n; ++i)
        if (find(i) == bestRoot)
            out.push_back(i);
    return out;
}

} // namespace mscp::verify
