/**
 * @file
 * Canonical state serialization for the model checker.
 *
 * The serialization abstracts everything that distinguishes
 * behaviorally equivalent engine states reached along different
 * action prefixes:
 *
 *  - absolute ticks never appear; tick-valued freshness stamps
 *    (durable writes, crash-stamped write-backs) and LRU use
 *    clocks are replaced by order-preserving ranks within their
 *    comparison space (equal values share a rank, so relative
 *    order -- the only thing the engine ever reads -- survives);
 *  - per-cpu attempt sequence numbers and per-home busy tokens are
 *    rank-renumbered the same way (the duplicate filters compare
 *    within one space only);
 *  - generators (seqGen, busyTokenGen, opId/opGen) and pure
 *    observability state (issueTick, opClass, latency sums,
 *    counters) are excluded;
 *  - fields that are only meaningful in some states (an inactive
 *    cpu's stale ref, a disarmed timer's seq, a non-evicting
 *    victim) are normalized away. Normalization is only applied
 *    where the field is provably never read again, so it can only
 *    merge behaviorally identical states;
 *  - pending messages are grouped by delivery stream and listed in
 *    FIFO order within each stream, erasing irrelevant buffer
 *    interleavings.
 *
 * When symmetry reduction is enabled (and sound for the config,
 * see EngineGateway::symmetryEligible), the canonical form is the
 * lexicographic minimum of the serialization over all cache-role
 * permutations: every node id that denotes a *cache role* (cache
 * message endpoints, present bits, owner fields, ack sets) is
 * permuted, while *home role* ids (fixed by the block
 * interleaving) stay put. Remaining program queues are part of the
 * serialization, so two states only merge when one really is a
 * role-renaming of the other, programs included.
 */

#include <algorithm>
#include <map>

#include "verify/canon.hh"
#include "verify/state.hh"

namespace mscp::verify
{

namespace
{

using proto::MsgType;

/** Marker for invalidNode in serialized role fields. */
constexpr std::uint32_t NodeMarker = 0xffffffffu;

/** Space a message's seq field lives in. */
enum class SeqSpace : std::uint8_t
{
    None,      ///< unset (constant 0); emitted raw
    Requester, ///< requester cpu's attempt-seq space
    Dst,       ///< echo to the requester at dst
    Stamp,     ///< home freshness-stamp space (send tick)
};

SeqSpace
seqSpaceOf(MsgType t)
{
    switch (t) {
      case MsgType::LoadReq:
      case MsgType::LoadOwnReq:
      case MsgType::OwnReq:
      case MsgType::EvictReq:
      case MsgType::LoadFwd:
      case MsgType::LoadOwnFwd:
      case MsgType::OwnFwd:
        return SeqSpace::Requester;
      case MsgType::DataBlock:
      case MsgType::Datum:
      case MsgType::StateXfer:
      case MsgType::StateCopyXfer:
      case MsgType::NackNotOwner:
      case MsgType::EvictAck:
        return SeqSpace::Dst;
      case MsgType::DurableWrite:
      case MsgType::EvictDone:
        return SeqSpace::Stamp;
      default:
        return SeqSpace::None;
    }
}

/** Order-preserving rank map: value -> dense rank from 1 (0 stays
 *  0 = unset; equal values share a rank). */
using RankMap = std::map<std::uint64_t, std::uint64_t>;

void
note(RankMap &space, std::uint64_t v)
{
    if (v)
        space.emplace(v, 0);
}

void
assignRanks(RankMap &space)
{
    std::uint64_t r = 0;
    for (auto &[v, rank] : space) {
        (void)v;
        rank = ++r;
    }
}

std::uint64_t
rankOf(const RankMap &space, std::uint64_t v)
{
    if (!v)
        return 0;
    auto it = space.find(v);
    return it == space.end() ? ~std::uint64_t{0} : it->second;
}

} // anonymous namespace

std::vector<std::uint8_t>
EngineGateway::canonical() const
{
    const Engine *e = eng.get();
    const unsigned n = static_cast<unsigned>(e->cpus.size());
    const auto &g = e->params.geometry;
    const std::uint64_t nb = nBlocks;
    const unsigned bw = g.blockWords;
    const bool timeouts = cfg.opt.timeoutBase > 0;

    auto homeOfBlk = [n](BlockId b) {
        return static_cast<NodeId>(b % n);
    };

    // ------------------------------------------------------------
    // Pass 1: collect the value spaces that get rank-renumbered.
    // ------------------------------------------------------------
    std::vector<RankMap> cpuSeq(n), homeTok(n), homeStamp(n);

    auto noteMsg = [&](const Msg &m) {
        switch (seqSpaceOf(m.type)) {
          case SeqSpace::Requester:
            if (m.requester < n)
                note(cpuSeq[m.requester], m.seq);
            break;
          case SeqSpace::Dst:
            if (m.dst < n)
                note(cpuSeq[m.dst], m.seq);
            break;
          case SeqSpace::Stamp:
            note(homeStamp[homeOfBlk(m.blk)], m.seq);
            break;
          case SeqSpace::None:
            break;
        }
        note(homeTok[homeOfBlk(m.blk)], m.tok);
    };

    for (unsigned c = 0; c < n; ++c) {
        const auto &cs = e->cpus[c];
        if (cs.active) {
            note(cpuSeq[c], cs.txSeq);
            if (cs.timeoutArmed)
                note(cpuSeq[c], cs.vTimeoutSeq);
            if (timeouts)
                noteMsg(cs.lastReq);
        }
        if (cs.evicting)
            note(homeTok[homeOfBlk(cs.victimBlk)], cs.evictToken);
    }
    for (unsigned h = 0; h < n; ++h) {
        const auto &hs = e->homes[h];
        for (BlockId blk = h; blk < nb; blk += n) {
            if (const std::uint64_t *t = hs.busyToken.find(blk))
                note(homeTok[h], *t);
            if (const auto *q = hs.waiting.find(blk))
                for (const Msg &m : *q)
                    noteMsg(m);
            for (unsigned off = 0; off < bw; ++off) {
                Addr a = static_cast<Addr>(blk) * bw + off;
                if (const Tick *st = hs.durableStamp.find(a))
                    note(homeStamp[h], *st);
            }
        }
        for (unsigned c = 0; c < n; ++c) {
            if (const std::uint64_t *s = hs.seqSeen.find(c))
                note(cpuSeq[c], *s);
        }
    }
    for (const auto &p : e->vPending)
        noteMsg(p.msg);

    for (unsigned c = 0; c < n; ++c)
        assignRanks(cpuSeq[c]);
    for (unsigned h = 0; h < n; ++h) {
        assignRanks(homeTok[h]);
        assignRanks(homeStamp[h]);
    }

    // ------------------------------------------------------------
    // Pass 2: serialize under one cache-role permutation.
    // inv[newId] = oldId.
    // ------------------------------------------------------------
    auto serializeUnder =
        [&](const std::vector<NodeId> &inv) {
            std::vector<NodeId> toNew(n);
            for (unsigned j = 0; j < n; ++j)
                toNew[inv[j]] = static_cast<NodeId>(j);

            auto mapNode = [&](NodeId c) -> std::uint32_t {
                if (c == invalidNode)
                    return NodeMarker;
                return c < n ? toNew[c] : c;
            };

            ByteSink out;

            auto writeBits = [&](const DynamicBitset &bits) {
                out.u32(static_cast<std::uint32_t>(bits.size()));
                for (unsigned j = 0; j < n && j < bits.size(); ++j)
                    out.u8(bits.test(inv[j]) ? 1 : 0);
            };

            auto writeMsg = [&](const Msg &m, bool src_is_mem) {
                out.u8(static_cast<std::uint8_t>(m.type));
                out.u8(src_is_mem ? 1 : 0);
                out.u8(m.toMemory ? 1 : 0);
                out.u32(src_is_mem ? m.src : mapNode(m.src));
                out.u32(m.toMemory ? m.dst : mapNode(m.dst));
                out.u64(m.blk);
                out.u32(m.offset);
                // requester is a cache role except on RecoveryPurge
                // (the probing home) and the hand-off transfers
                // (invalidNode sentinel, covered by mapNode).
                out.u32(m.type == MsgType::RecoveryPurge
                            ? m.requester : mapNode(m.requester));
                // value is a node id only on OwnerAnnounce.
                out.u64(m.type == MsgType::OwnerAnnounce
                            ? mapNode(static_cast<NodeId>(m.value))
                            : m.value);
                switch (seqSpaceOf(m.type)) {
                  case SeqSpace::Requester:
                    out.u64(m.requester < n
                                ? rankOf(cpuSeq[m.requester], m.seq)
                                : m.seq);
                    break;
                  case SeqSpace::Dst:
                    out.u64(m.dst < n
                                ? rankOf(cpuSeq[m.dst], m.seq)
                                : m.seq);
                    break;
                  case SeqSpace::Stamp:
                    out.u64(rankOf(homeStamp[homeOfBlk(m.blk)],
                                   m.seq));
                    break;
                  case SeqSpace::None:
                    out.u64(m.seq);
                    break;
                }
                out.u64(rankOf(homeTok[homeOfBlk(m.blk)], m.tok));
                out.u8(m.flag ? 1 : 0);
                out.u8(static_cast<std::uint8_t>(m.field.state));
                out.u8(m.field.modified ? 1 : 0);
                out.u32(mapNode(m.field.owner));
                writeBits(m.field.present);
                out.u32(static_cast<std::uint32_t>(m.data.size()));
                for (std::uint64_t w : m.data)
                    out.u64(w);
            };

            auto writeRef = [&](const workload::MemRef &r) {
                out.u8(r.isWrite ? 1 : 0);
                out.u64(r.addr);
                out.u64(r.value);
            };

            // ---- cpu sections, new-id order --------------------
            for (unsigned j = 0; j < n; ++j) {
                const auto &cs = e->cpus[inv[j]];
                const unsigned c = inv[j];
                out.u8(e->deadNodes.test(c) ? 1 : 0);
                out.u8(cs.active ? 1 : 0);
                out.u8(static_cast<std::uint8_t>(cs.phase));
                out.u8(cs.vCommitPending ? 1 : 0);
                out.u8(cs.vDeferred ? 1 : 0);
                out.u8(cs.timeoutArmed ? 1 : 0);
                if (cs.active) {
                    out.u32(cs.attempts);
                    out.u32(cs.pointerRetries);
                    out.u32(cs.pendingAcks);
                    writeRef(cs.ref);
                    out.u64(rankOf(cpuSeq[c], cs.txSeq));
                    out.u64(cs.timeoutArmed
                                ? rankOf(cpuSeq[c], cs.vTimeoutSeq)
                                : 0);
                    if (cs.phase == Engine::Phase::WaitDwAcks ||
                        cs.phase == Engine::Phase::WaitInvalAcks)
                        writeBits(cs.ackFrom);
                    if (timeouts)
                        writeMsg(cs.lastReq, false);
                }
                out.u32(static_cast<std::uint32_t>(
                    cs.queue.size()));
                for (const auto &r : cs.queue)
                    writeRef(r);
                out.u8(cs.evicting ? 1 : 0);
                if (cs.evicting) {
                    out.u64(cs.victimBlk);
                    out.u64(rankOf(homeTok[homeOfBlk(cs.victimBlk)],
                                   cs.evictToken));
                    out.u32(static_cast<std::uint32_t>(cs.candIdx));
                    out.u32(static_cast<std::uint32_t>(
                        cs.candidates.size()));
                    for (NodeId cand : cs.candidates)
                        out.u32(mapNode(cand));
                }
                for (BlockId blk = 0; blk < nb; ++blk) {
                    std::uint8_t flags = 0;
                    if (cs.pinnedTx.contains(blk))
                        flags |= 1;
                    if (cs.pinnedOffer.contains(blk))
                        flags |= 2;
                    if (cs.clearPending.contains(blk))
                        flags |= 4;
                    if (cs.purged.contains(blk))
                        flags |= 8;
                    out.u8(flags);
                }

                // Cache entries, per set, block order, with the LRU
                // use clock reduced to a per-set rank.
                auto occ = cs.array.occupiedEntries();
                for (unsigned s = 0; s < g.numSets; ++s) {
                    std::vector<const cache::Entry *> setEntries;
                    for (const cache::Entry *en : occ)
                        if (g.setOf(en->block) == s)
                            setEntries.push_back(en);
                    std::sort(setEntries.begin(), setEntries.end(),
                              [](const cache::Entry *a,
                                 const cache::Entry *b) {
                                  return a->block < b->block;
                              });
                    RankMap lru;
                    for (const cache::Entry *en : setEntries)
                        note(lru, en->lastUse);
                    assignRanks(lru);
                    out.u32(static_cast<std::uint32_t>(
                        setEntries.size()));
                    for (const cache::Entry *en : setEntries) {
                        out.u64(en->block);
                        out.u8(static_cast<std::uint8_t>(
                            en->field.state));
                        out.u8(en->field.modified ? 1 : 0);
                        out.u32(mapNode(en->field.owner));
                        writeBits(en->field.present);
                        out.u64(rankOf(lru, en->lastUse));
                        for (std::uint64_t w : en->data)
                            out.u64(w);
                    }
                }
            }

            // ---- home sections, raw order ----------------------
            for (unsigned h = 0; h < n; ++h) {
                const auto &hs = e->homes[h];
                for (BlockId blk = h; blk < nb; blk += n) {
                    out.u8(hs.busy.contains(blk) ? 1 : 0);
                    const std::uint64_t *tok =
                        hs.busyToken.find(blk);
                    out.u64(tok ? rankOf(homeTok[h], *tok) : 0);
                    auto rel = hs.busyReleaser.find(blk);
                    out.u32(rel == hs.busyReleaser.end()
                                ? NodeMarker
                                : mapNode(rel->second));
                    out.u8(hs.recovering.contains(blk) ? 1 : 0);
                    out.u8(hs.recoveredGR.contains(blk) ? 1 : 0);

                    const auto *q = hs.waiting.find(blk);
                    out.u32(q ? static_cast<std::uint32_t>(
                                    q->size())
                              : 0);
                    if (q)
                        for (const Msg &m : *q)
                            writeMsg(m, false);

                    auto ctx = hs.recoveryCtx.find(blk);
                    out.u8(ctx != hs.recoveryCtx.end() ? 1 : 0);
                    if (ctx != hs.recoveryCtx.end()) {
                        for (unsigned j = 0; j < n; ++j)
                            out.u8(ctx->second.pending.contains(
                                       inv[j])
                                       ? 1 : 0);
                        out.u32(static_cast<std::uint32_t>(
                            ctx->second.suspecters.size()));
                        for (NodeId s : ctx->second.suspecters)
                            out.u32(mapNode(s));
                        out.u8(ctx->second.haveData ? 1 : 0);
                        out.u32(static_cast<std::uint32_t>(
                            ctx->second.data.size()));
                        for (std::uint64_t w : ctx->second.data)
                            out.u64(w);
                    }

                    out.u32(mapNode(
                        hs.mem.blockStore().owner(blk)));
                    for (std::uint64_t w : hs.mem.readBlock(blk))
                        out.u64(w);
                    for (unsigned off = 0; off < bw; ++off) {
                        Addr a = static_cast<Addr>(blk) * bw + off;
                        const Tick *st = hs.durableStamp.find(a);
                        out.u64(st ? rankOf(homeStamp[h], *st) : 0);
                    }
                }
                for (unsigned j = 0; j < n; ++j) {
                    const std::uint64_t *s =
                        hs.seqSeen.find(inv[j]);
                    out.u64(s ? rankOf(cpuSeq[inv[j]], *s) : 0);
                }
            }

            // ---- linearizability monitor -----------------------
            for (Addr a = 0; a < nb * bw; ++a) {
                const std::uint64_t *lc = e->lastCompleted.find(a);
                out.u8(lc ? 1 : 0);
                out.u64(lc ? *lc : 0);
                const auto *pw = e->pendingWrites.find(a);
                if (!pw || pw->empty()) {
                    out.u32(0);
                } else {
                    // The per-address multiset erases by swap-with
                    // -last: order is path noise, so sort.
                    std::vector<std::uint64_t> vals(*pw);
                    std::sort(vals.begin(), vals.end());
                    out.u32(static_cast<std::uint32_t>(
                        vals.size()));
                    for (std::uint64_t v : vals)
                        out.u64(v);
                }
            }

            // ---- pending messages, grouped per stream ----------
            struct Keyed
            {
                std::uint32_t src;
                std::uint8_t srcIsMem;
                std::uint32_t dst;
                std::uint8_t toMemory;
                std::size_t idx;
            };
            std::vector<Keyed> order;
            order.reserve(e->vPending.size());
            for (std::size_t i = 0; i < e->vPending.size(); ++i) {
                const auto &p = e->vPending[i];
                order.push_back(
                    {p.srcIsMem ? p.msg.src : mapNode(p.msg.src),
                     static_cast<std::uint8_t>(p.srcIsMem ? 1 : 0),
                     p.msg.toMemory ? p.msg.dst
                                    : mapNode(p.msg.dst),
                     static_cast<std::uint8_t>(
                         p.msg.toMemory ? 1 : 0),
                     i});
            }
            // Stable: FIFO order within a stream is behavior, the
            // interleaving across streams is not.
            std::stable_sort(
                order.begin(), order.end(),
                [](const Keyed &a, const Keyed &b) {
                    if (a.src != b.src)
                        return a.src < b.src;
                    if (a.srcIsMem != b.srcIsMem)
                        return a.srcIsMem < b.srcIsMem;
                    if (a.dst != b.dst)
                        return a.dst < b.dst;
                    return a.toMemory < b.toMemory;
                });
            out.u32(static_cast<std::uint32_t>(order.size()));
            for (const Keyed &k : order)
                writeMsg(e->vPending[k.idx].msg,
                         e->vPending[k.idx].srcIsMem);

            // ---- pending sweeps, crash budget ------------------
            std::vector<std::uint32_t> sweeps;
            for (NodeId d : e->vSweepPending)
                sweeps.push_back(mapNode(d));
            std::sort(sweeps.begin(), sweeps.end());
            out.u32(static_cast<std::uint32_t>(sweeps.size()));
            for (std::uint32_t d : sweeps)
                out.u32(d);
            if (cfg.opt.crashBudget > 0)
                out.u64(e->ctrs.crashes);
            out.u64(e->refsOutstanding);

            return out.take();
        };

    std::vector<NodeId> inv(n);
    for (unsigned j = 0; j < n; ++j)
        inv[j] = static_cast<NodeId>(j);
    std::vector<std::uint8_t> best = serializeUnder(inv);

    if (cfg.opt.symmetry && symEligible && n <= 5) {
        while (std::next_permutation(inv.begin(), inv.end())) {
            std::vector<std::uint8_t> cand = serializeUnder(inv);
            if (cand < best)
                best = std::move(cand);
        }
    }
    return best;
}

} // namespace mscp::verify
