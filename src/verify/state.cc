#include "state.hh"

#include <algorithm>
#include <map>
#include <set>

#include "proto/checker.hh"
#include "sim/logging.hh"

namespace mscp::verify
{

const char *
actionKindName(ActionKind k)
{
    switch (k) {
      case ActionKind::Issue: return "issue";
      case ActionKind::Commit: return "commit";
      case ActionKind::Retry: return "retry";
      case ActionKind::Timeout: return "timeout";
      case ActionKind::Deliver: return "deliver";
      case ActionKind::Sweep: return "sweep";
      case ActionKind::Rejoin: return "rejoin";
      case ActionKind::Crash: return "crash";
      default: return "unknown";
    }
}

std::uint64_t
VerifyConfig::numBlocks() const
{
    std::uint64_t max_blk = 0;
    bool any = false;
    for (const auto &prog : program) {
        for (const auto &ref : prog) {
            max_blk = std::max(max_blk,
                               static_cast<std::uint64_t>(
                                   geometry.blockOf(ref.addr)));
            any = true;
        }
    }
    return any ? max_blk + 1 : 0;
}

EngineGateway::EngineGateway(const VerifyConfig &cfg_,
                             bool with_trace)
    : cfg(cfg_), withTrace(with_trace)
{
    panic_if(cfg.nodes < 2 || (cfg.nodes & (cfg.nodes - 1)),
             "verify: node count must be a power of two >= 2");
    panic_if(cfg.program.size() > cfg.nodes,
             "verify: more programs than nodes");
    nBlocks = cfg.numBlocks();

    // Symmetry reduction is sound only when no cache set can
    // overflow: eviction hand-offs materialize candidate lists in
    // ascending node-id order, which a role permutation does not
    // preserve. Statically check that every cpu's program touches
    // at most assoc distinct blocks per set.
    symEligible = true;
    for (const auto &prog : cfg.program) {
        std::map<unsigned, std::set<BlockId>> perSet;
        for (const auto &ref : prog) {
            BlockId b = cfg.geometry.blockOf(ref.addr);
            perSet[cfg.geometry.setOf(b)].insert(b);
        }
        for (const auto &[set, blks] : perSet) {
            (void)set;
            if (blks.size() > cfg.geometry.assoc) {
                symEligible = false;
                break;
            }
        }
        if (!symEligible)
            break;
    }

    buildEngine();
}

EngineGateway::~EngineGateway() = default;

void
EngineGateway::buildEngine()
{
    eng.reset();
    net = std::make_unique<net::OmegaNetwork>(cfg.nodes);

    proto::ConcurrentParams p;
    p.geometry = cfg.geometry;
    p.defaultMode = cfg.mode;
    p.hitLatency = 1;
    p.thinkTime = 0;
    p.timeoutBase = cfg.opt.timeoutBase;
    p.maxRetries = cfg.opt.maxRetries;
    p.watchdogPeriod = 0;
    // The stabilization window must never fire on its own: sweeps
    // and wedged-busy checks are explorer actions. Controlled mode
    // abstracts real time away (one tick per action), so any
    // tick-difference heuristic in the engine is pushed beyond the
    // horizon and replaced by an explicit transition.
    p.crashSuspectDelay = Tick{1} << 40;
    p.traceEnabled = withTrace;
    if (cfg.opt.crashBudget > 0) {
        // A dummy far-future plan flips crashEnabled() (which gates
        // the recovery machinery); the event never fires because
        // run() -- which would schedule it -- is never called.
        p.crashPlan =
            CrashPlan::singleNode(0, Tick{1} << 62, 0);
    }

    eng = std::make_unique<Engine>(*net, p);
    eng->vControlled = true;
    eng->vDedupSends = cfg.opt.dedupResends;

    std::uint64_t total = 0;
    for (std::size_t c = 0; c < cfg.program.size(); ++c) {
        for (workload::MemRef ref : cfg.program[c]) {
            ref.cpu = static_cast<NodeId>(c);
            eng->cpus[c].queue.push_back(ref);
            ++total;
        }
    }
    eng->refsOutstanding = total;
    actionsApplied = 0;
}

void
EngineGateway::reset()
{
    buildEngine();
}

const Tracer &
EngineGateway::tracer() const
{
    return eng->_tracer;
}

void
EngineGateway::markAction(const Action &a, std::uint64_t step)
{
    eng->trace(TraceEvent::VerifyAction, a.node,
               a.kind == ActionKind::Deliver ? a.dst : a.node,
               static_cast<std::uint8_t>(a.kind), step, a.blk);
}

std::uint64_t
EngineGateway::refsOutstanding() const
{
    return eng->refsOutstanding;
}

std::uint64_t
EngineGateway::valueErrors() const
{
    return eng->_valueErrors;
}

bool
EngineGateway::settled() const
{
    if (eng->refsOutstanding != 0 || !eng->vPending.empty() ||
        !eng->vSweepPending.empty())
        return false;
    for (const auto &h : eng->homes)
        if (!h.busy.empty())
            return false;
    return true;
}

std::uint64_t
EngineGateway::fingerprint(const Msg &m, bool src_is_mem)
{
    // FNV-1a over the full message content. Used to re-locate "the
    // same" message in a rebuilt engine's pending buffer during
    // counterexample replay; exploration itself never compares
    // fingerprints across engines.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(static_cast<std::uint64_t>(m.type));
    mix(m.src);
    mix(m.dst);
    mix(src_is_mem ? 1 : 0);
    mix(m.toMemory ? 1 : 0);
    mix(m.blk);
    mix(m.requester);
    mix(m.offset);
    mix(m.value);
    mix(m.seq);
    mix(m.tok);
    mix(m.flag ? 1 : 0);
    mix(static_cast<std::uint64_t>(m.field.state));
    mix(m.field.modified ? 1 : 0);
    mix(m.field.owner);
    for (std::size_t b = 0; b < m.field.present.size(); ++b)
        mix(m.field.present.test(b) ? 1 : 0);
    mix(m.data.size());
    for (std::uint64_t w : m.data)
        mix(w);
    return h;
}

Action
EngineGateway::describeDeliver(const Msg &m, bool src_is_mem,
                               std::uint32_t index)
{
    Action a;
    a.kind = ActionKind::Deliver;
    a.index = index;
    a.fp = fingerprint(m, src_is_mem);
    a.msgType = static_cast<std::uint8_t>(m.type);
    a.src = m.src;
    a.dst = m.dst;
    a.srcIsMem = src_is_mem;
    a.toMemory = m.toMemory;
    a.blk = m.blk;
    a.seq = m.seq;
    a.node = m.dst;
    return a;
}

bool
EngineGateway::isStreamHead(std::size_t i) const
{
    // FIFO stream key: (src, src role, dst, dst role). A sound
    // superset of the network's per-port-pair ordering that is
    // also equivariant under cache-role permutations (the physical
    // port pair mixes home- and cache-role traffic, whose node ids
    // permute differently).
    const auto &p = eng->vPending;
    for (std::size_t j = 0; j < i; ++j) {
        if (p[j].msg.src == p[i].msg.src &&
            p[j].srcIsMem == p[i].srcIsMem &&
            p[j].msg.dst == p[i].msg.dst &&
            p[j].msg.toMemory == p[i].msg.toMemory)
            return false;
    }
    return true;
}

bool
EngineGateway::deadSrcPending(NodeId n) const
{
    const unsigned count = static_cast<unsigned>(eng->cpus.size());
    for (const auto &p : eng->vPending) {
        if (p.srcIsMem || p.msg.src >= count)
            continue;
        if (n == invalidNode ? eng->deadNodes.test(p.msg.src)
                             : p.msg.src == n)
            return true;
    }
    return false;
}

bool
EngineGateway::deliverEligible(std::size_t i) const
{
    if (cfg.opt.fifoChannels && !isStreamHead(i))
        return false;
    // Stabilization ordering (see header): a RecoveryAck -- whose
    // arrival can complete a directory reconstruction -- may not
    // overtake traffic a dead cache sent before it died. The real
    // network guarantees this by latency arithmetic (a post-crash
    // purge/ack round trip strictly outlasts any pre-crash
    // residual); the untimed model has to state it as a guard.
    if (eng->vPending[i].msg.type == proto::MsgType::RecoveryAck &&
        deadSrcPending())
        return false;
    return true;
}

std::vector<Action>
EngineGateway::enabledActions() const
{
    std::vector<Action> out;
    const unsigned n = static_cast<unsigned>(eng->cpus.size());

    auto cpuAct = [&](ActionKind k, NodeId c) {
        Action a;
        a.kind = k;
        a.node = c;
        out.push_back(a);
    };

    for (NodeId c = 0; c < n; ++c) {
        const auto &cs = eng->cpus[c];
        if (!cs.active && !cs.queue.empty() &&
            !eng->deadNodes.test(c))
            cpuAct(ActionKind::Issue, c);
    }
    for (NodeId c = 0; c < n; ++c) {
        if (eng->cpus[c].active && eng->cpus[c].vCommitPending)
            cpuAct(ActionKind::Commit, c);
    }
    for (NodeId c = 0; c < n; ++c) {
        if (eng->cpus[c].active && eng->cpus[c].vDeferred)
            cpuAct(ActionKind::Retry, c);
    }
    for (std::size_t i = 0; i < eng->vPending.size(); ++i) {
        if (!deliverEligible(i))
            continue;
        out.push_back(describeDeliver(
            eng->vPending[i].msg, eng->vPending[i].srcIsMem,
            static_cast<std::uint32_t>(i)));
    }

    // Timeouts enumerate after deliveries: a timer firing is the
    // "late" outcome, and budgeted DFS then explores completing
    // paths before descending into the (unbounded) retry subtrees.
    if (cfg.opt.timeoutBase > 0) {
        for (NodeId c = 0; c < n; ++c) {
            if (eng->cpus[c].active && eng->cpus[c].timeoutArmed)
                cpuAct(ActionKind::Timeout, c);
        }
    }

    // The stabilization sweep models a timer set past the network's
    // drain horizon: it cannot run while the dead node's own sends
    // are still in flight.
    for (NodeId d : eng->vSweepPending)
        if (!deadSrcPending(d))
            cpuAct(ActionKind::Sweep, d);

    if (cfg.opt.allowRejoin) {
        for (NodeId c = 0; c < n; ++c) {
            if (eng->deadNodes.test(c))
                cpuAct(ActionKind::Rejoin, c);
        }
    }
    if (cfg.opt.crashBudget > 0 &&
        eng->ctrs.crashes < cfg.opt.crashBudget) {
        for (NodeId c = 0; c < n; ++c) {
            if (!eng->deadNodes.test(c))
                cpuAct(ActionKind::Crash, c);
        }
    }
    return out;
}

void
EngineGateway::advance()
{
    // One sentinel event moves virtual time forward a tick, so the
    // tick stamps successive actions produce (durable-write
    // freshness, LRU clocks, eviction spans) stay causally ordered.
    // Nothing else ever reaches the queue in controlled mode.
    eng->eq.scheduleIn([] {}, 1);
    eng->eq.run();
}

void
EngineGateway::applyUnchecked(const Action &a)
{
    switch (a.kind) {
      case ActionKind::Issue:
        eng->issueNext(a.node);
        break;
      case ActionKind::Commit:
        eng->completeRef(a.node);
        break;
      case ActionKind::Retry:
        eng->cpus[a.node].vDeferred = false;
        eng->startAccess(a.node);
        break;
      case ActionKind::Timeout:
        eng->onTimeout(a.node, eng->cpus[a.node].vTimeoutSeq);
        break;
      case ActionKind::Deliver: {
        panic_if(a.index >= eng->vPending.size(),
                 "verify: deliver index out of range");
        Msg m = eng->vPending[a.index].msg;
        eng->vPending.erase(eng->vPending.begin() + a.index);
        eng->deliver(m);
        break;
      }
      case ActionKind::Sweep: {
        auto it = std::find(eng->vSweepPending.begin(),
                            eng->vSweepPending.end(), a.node);
        panic_if(it == eng->vSweepPending.end(),
                 "verify: sweep for node with no pending sweep");
        eng->vSweepPending.erase(it);
        bool saved = eng->vMemSend;
        eng->vMemSend = true;
        eng->homeSweepDead(a.node);
        eng->vMemSend = saved;
        break;
      }
      case ActionKind::Rejoin:
        eng->rejoinNode(a.node);
        break;
      case ActionKind::Crash:
        eng->crashNode(a.node, cfg.opt.allowRejoin ? 1 : 0);
        break;
      default:
        panic("verify: unknown action kind");
    }
    ++actionsApplied;
}

void
EngineGateway::apply(const Action &a)
{
    advance();
    bool saved = loggingThrows();
    setLoggingThrows(true);
    try {
        applyUnchecked(a);
    } catch (...) {
        setLoggingThrows(saved);
        throw;
    }
    setLoggingThrows(saved);
}

bool
EngineGateway::enabledNonDeliver(const Action &a) const
{
    const unsigned n = static_cast<unsigned>(eng->cpus.size());
    if (a.kind != ActionKind::Deliver && a.node >= n)
        return false;
    switch (a.kind) {
      case ActionKind::Issue: {
        const auto &cs = eng->cpus[a.node];
        return !cs.active && !cs.queue.empty() &&
               !eng->deadNodes.test(a.node);
      }
      case ActionKind::Commit:
        return eng->cpus[a.node].active &&
               eng->cpus[a.node].vCommitPending;
      case ActionKind::Retry:
        return eng->cpus[a.node].active &&
               eng->cpus[a.node].vDeferred;
      case ActionKind::Timeout:
        return cfg.opt.timeoutBase > 0 &&
               eng->cpus[a.node].active &&
               eng->cpus[a.node].timeoutArmed;
      case ActionKind::Sweep:
        return !deadSrcPending(a.node) &&
               std::find(eng->vSweepPending.begin(),
                         eng->vSweepPending.end(),
                         a.node) != eng->vSweepPending.end();
      case ActionKind::Rejoin:
        return cfg.opt.allowRejoin && eng->deadNodes.test(a.node);
      case ActionKind::Crash:
        return cfg.opt.crashBudget > 0 &&
               eng->ctrs.crashes < cfg.opt.crashBudget &&
               !eng->deadNodes.test(a.node);
      default:
        return false;
    }
}

bool
EngineGateway::applyIfEnabled(const Action &a)
{
    if (a.kind != ActionKind::Deliver) {
        if (!enabledNonDeliver(a))
            return false;
        apply(a);
        return true;
    }

    // Re-locate the message: exact content fingerprint first, then
    // a structural fallback (type/src/dst/blk/requester) so paths
    // whose sequence numbering shifted during minimization can
    // still replay. Restricted to stream heads under FIFO.
    auto eligible = [&](std::size_t i) {
        return deliverEligible(i);
    };
    std::size_t found = eng->vPending.size();
    for (std::size_t i = 0; i < eng->vPending.size(); ++i) {
        if (!eligible(i))
            continue;
        if (fingerprint(eng->vPending[i].msg,
                        eng->vPending[i].srcIsMem) == a.fp) {
            found = i;
            break;
        }
    }
    if (found == eng->vPending.size()) {
        for (std::size_t i = 0; i < eng->vPending.size(); ++i) {
            if (!eligible(i))
                continue;
            const Msg &m = eng->vPending[i].msg;
            if (static_cast<std::uint8_t>(m.type) == a.msgType &&
                m.src == a.src && m.dst == a.dst &&
                m.toMemory == a.toMemory && m.blk == a.blk &&
                eng->vPending[i].srcIsMem == a.srcIsMem) {
                found = i;
                break;
            }
        }
    }
    if (found == eng->vPending.size())
        return false;
    Action b = a;
    b.index = static_cast<std::uint32_t>(found);
    apply(b);
    return true;
}

ActionFootprint
EngineGateway::footprint(const Action &a) const
{
    ActionFootprint f;
    auto cpuComp = [](NodeId c) { return std::uint64_t{1} << c; };
    auto homeComp = [](NodeId h) {
        return std::uint64_t{1} << (32 + (h & 31));
    };
    auto mon = [&f, this](Addr addr, bool write) {
        f.hasMon = 1;
        f.monWrite = write ? 1 : 0;
        f.monBlk = cfg.geometry.blockOf(addr);
    };

    switch (a.kind) {
      case ActionKind::Issue: {
        // startAccess runs at the issuing cpu and only appends to
        // streams originating there; a write registers a pending
        // monitor value, a read may sample on a hit.
        f.comps = cpuComp(a.node);
        const auto &q = eng->cpus[a.node].queue;
        if (!q.empty())
            mon(q.front().addr, q.front().isWrite);
        break;
      }
      case ActionKind::Commit:
      case ActionKind::Retry:
      case ActionKind::Timeout: {
        // All three continue the cpu's current reference: a commit
        // completes it (monitor write for writes), a retry re-runs
        // startAccess (may sample on a hit), a timeout resends or
        // -- under a crash plan -- falls back through startAccess.
        f.comps = cpuComp(a.node);
        const auto &cs = eng->cpus[a.node];
        if (cs.active)
            mon(cs.ref.addr, cs.ref.isWrite);
        break;
      }
      case ActionKind::Deliver: {
        // A handler executes at the destination component and only
        // appends to streams originating there. The monitor is
        // touched by serves (read sampling: LoadReq either side,
        // LoadFwd at the owner) and by acks whose last arrival
        // completes a write (DwAck, InvalAck).
        f.comps = a.toMemory ? homeComp(a.dst) : cpuComp(a.dst);
        auto t = static_cast<proto::MsgType>(a.msgType);
        Addr base = cfg.geometry.baseOf(a.blk);
        if (t == proto::MsgType::LoadReq ||
            t == proto::MsgType::LoadFwd) {
            mon(base, /*write=*/false);
        } else if (t == proto::MsgType::DwAck ||
                   t == proto::MsgType::InvalAck) {
            mon(base, /*write=*/true);
        }
        break;
      }
      case ActionKind::Sweep:
      case ActionKind::Rejoin:
      case ActionKind::Crash:
      default:
        // Cross-component effects (deadNodes, recovery fences,
        // whole-node purges): dependent on everything.
        f.global = 1;
        break;
    }
    return f;
}

std::vector<ObsEvent>
EngineGateway::takeObservations()
{
    std::vector<ObsEvent> out;
    out.reserve(eng->vObsLog.size());
    for (const auto &o : eng->vObsLog)
        out.push_back({o.cpu, o.invoke, o.isWrite, o.addr, o.value});
    eng->vObsLog.clear();
    return out;
}

std::vector<std::uint64_t>
EngineGateway::pendingSamples() const
{
    std::vector<std::uint64_t> out;
    for (const auto &cs : eng->cpus) {
        // Only an active read's accepted sample is observable state
        // (its respond event will carry it); anything else is
        // stale scratch.
        bool pendingRead = cs.active && !cs.ref.isWrite;
        out.push_back(pendingRead ? cs.vSample : 0);
        out.push_back(pendingRead ? 1 : 0);
    }
    return out;
}

std::vector<std::string>
EngineGateway::checkInvariants() const
{
    const Engine *e = eng.get();
    proto::SystemView view;
    view.numCaches = static_cast<unsigned>(e->cpus.size());
    view.cacheArray =
        [e](NodeId c) -> const cache::CacheArray & {
            return e->cpus[c].array;
        };
    view.memoryModule =
        [e](unsigned i) -> const mem::MemoryModule & {
            return e->homes[i].mem;
        };
    view.homeOf = [e](BlockId b) { return e->homeOf(b); };
    view.isLive = [e](NodeId c) { return !e->deadNodes.test(c); };
    view.isQuiescent = [e] { return e->isQuiescent(); };
    view.expectedWord = [e](Addr a, std::uint64_t &v) {
        const std::uint64_t *w = e->lastCompleted.find(a);
        if (!w)
            return false;
        v = *w;
        return true;
    };
    view.numBlocks = nBlocks;
    return proto::checkInvariants(view);
}

} // namespace mscp::verify
