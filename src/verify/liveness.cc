#include "liveness.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"
#include "verify/canon.hh"
#include "verify/por.hh"

namespace mscp::verify
{

namespace
{

class SilenceLogging
{
  public:
    SilenceLogging() : saved(logLevel())
    {
        setLogLevel(LogLevel::Silent);
    }
    ~SilenceLogging() { setLogLevel(saved); }

  private:
    LogLevel saved;
};

constexpr std::uint32_t kNone = 0xffffffffu;

struct GraphEdge
{
    Action act;
    std::uint32_t to = kNone;
};

struct GraphNode
{
    std::vector<GraphEdge> edges;
    /** Sorted unique action keys enabled here (fairness domain). */
    std::vector<std::uint64_t> fairKeys;
    std::uint32_t parent = kNone; ///< discovery parent
    Action parentAct;             ///< edge taken from the parent
    bool refsOut = false;
    bool expanded = false;
};

struct Graph
{
    std::vector<GraphNode> nodes;
    std::uint64_t edges = 0;
    bool complete = true;
};

/** Materialize the full transition graph by replay-based DFS. */
Graph
buildGraph(EngineGateway &gw, const VerifyConfig &cfg)
{
    Graph g;
    std::unordered_map<Hash128, std::uint32_t, Hash128Hasher> ids;

    struct Frame
    {
        std::uint32_t id = 0;
        std::vector<Action> acts;
        std::size_t next = 0;
    };

    std::vector<Frame> frames;
    std::vector<Action> path;
    bool engineDirty = false;

    auto fairKeysOf = [](const std::vector<Action> &acts) {
        std::vector<std::uint64_t> keys;
        keys.reserve(acts.size());
        for (const Action &a : acts)
            keys.push_back(actionKey(a));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()),
                   keys.end());
        return keys;
    };

    gw.reset();
    ids.emplace(hashBytes(gw.canonical()), 0);
    g.nodes.emplace_back();
    {
        GraphNode &root = g.nodes.back();
        root.refsOut = gw.refsOutstanding() > 0;
        root.expanded = true;
        Frame f;
        f.id = 0;
        f.acts = gw.enabledActions();
        root.fairKeys = fairKeysOf(f.acts);
        frames.push_back(std::move(f));
    }

    while (!frames.empty()) {
        Frame &f = frames.back();
        if (f.next >= f.acts.size()) {
            frames.pop_back();
            if (!path.empty()) {
                path.pop_back();
                engineDirty = true;
            }
            continue;
        }
        const Action a = f.acts[f.next++];

        if (engineDirty) {
            gw.reset();
            for (const Action &p : path)
                gw.apply(p);
            engineDirty = false;
        }

        try {
            gw.apply(a);
        } catch (const PanicError &) {
            // A safety failure, not a liveness edge; the safety
            // explorer owns reporting it.
            engineDirty = true;
            continue;
        }
        path.push_back(a);

        Hash128 h = hashBytes(gw.canonical());
        auto [it, fresh] =
            ids.emplace(h, static_cast<std::uint32_t>(
                               g.nodes.size()));
        const std::uint32_t child = it->second;
        if (fresh)
            g.nodes.emplace_back();
        g.nodes[f.id].edges.push_back({a, child});
        ++g.edges;

        if (!fresh) {
            path.pop_back();
            engineDirty = true;
            continue;
        }

        GraphNode &cn = g.nodes[child];
        cn.parent = f.id;
        cn.parentAct = a;
        cn.refsOut = gw.refsOutstanding() > 0;

        if (g.nodes.size() >= cfg.opt.maxStates) {
            g.complete = false;
            break;
        }
        if (path.size() >= cfg.opt.maxDepth) {
            g.complete = false;
            path.pop_back();
            engineDirty = true;
            continue;
        }

        Frame nf;
        nf.id = child;
        nf.acts = gw.enabledActions();
        cn.fairKeys = fairKeysOf(nf.acts);
        cn.expanded = true;
        frames.push_back(std::move(nf));
    }
    return g;
}

/** Iterative Tarjan; @return sccId per node (0..count-1). */
std::vector<std::uint32_t>
tarjanScc(const Graph &g, std::uint32_t &sccCount)
{
    const std::uint32_t n =
        static_cast<std::uint32_t>(g.nodes.size());
    std::vector<std::uint32_t> index(n, kNone), low(n, 0),
        sccId(n, kNone);
    std::vector<bool> onStack(n, false);
    std::vector<std::uint32_t> stack;
    std::vector<LivenessFrame> dfs;
    std::uint32_t next = 0;
    sccCount = 0;

    for (std::uint32_t s = 0; s < n; ++s) {
        if (index[s] != kNone)
            continue;
        dfs.push_back({s, 0});
        while (!dfs.empty()) {
            LivenessFrame &f = dfs.back();
            const std::uint32_t v = f.state;
            if (f.edge == 0) {
                index[v] = low[v] = next++;
                stack.push_back(v);
                onStack[v] = true;
            }
            if (f.edge < g.nodes[v].edges.size()) {
                const std::uint32_t w =
                    g.nodes[v].edges[f.edge++].to;
                if (index[w] == kNone)
                    dfs.push_back({w, 0});
                else if (onStack[w])
                    low[v] = std::min(low[v], index[w]);
                continue;
            }
            if (low[v] == index[v]) {
                std::uint32_t w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    sccId[w] = sccCount;
                } while (w != v);
                ++sccCount;
            }
            dfs.pop_back();
            if (!dfs.empty()) {
                const std::uint32_t p = dfs.back().state;
                low[p] = std::min(low[p], low[v]);
            }
        }
    }
    return sccId;
}

/** Shortest internal path @p from -> @p to (actions), SCC-local.
 *  Empty when from == to. */
std::vector<Action>
sccPath(const Graph &g, const std::vector<std::uint32_t> &sccId,
        std::uint32_t scc, std::uint32_t from, std::uint32_t to)
{
    if (from == to)
        return {};
    std::unordered_map<std::uint32_t,
                       std::pair<std::uint32_t, std::uint32_t>>
        via; // node -> (prev node, edge index)
    std::deque<std::uint32_t> bfs{from};
    via.emplace(from, std::make_pair(kNone, kNone));
    while (!bfs.empty()) {
        const std::uint32_t v = bfs.front();
        bfs.pop_front();
        const auto &edges = g.nodes[v].edges;
        for (std::uint32_t e = 0; e < edges.size(); ++e) {
            const std::uint32_t w = edges[e].to;
            if (sccId[w] != scc || via.count(w))
                continue;
            via.emplace(w, std::make_pair(v, e));
            if (w == to) {
                std::vector<Action> out;
                std::uint32_t cur = w;
                while (cur != from) {
                    auto [pv, pe] = via.at(cur);
                    out.push_back(g.nodes[pv].edges[pe].act);
                    cur = pv;
                }
                std::reverse(out.begin(), out.end());
                return out;
            }
            bfs.push_back(w);
        }
    }
    return {}; // unreachable within a strongly connected component
}

} // anonymous namespace

bool
reproducesLasso(EngineGateway &gw,
                const std::vector<Action> &prefix,
                const std::vector<Action> &cycle)
{
    if (cycle.empty())
        return false;
    gw.reset();
    try {
        for (const Action &a : prefix)
            if (!gw.applyIfEnabled(a))
                return false;
        const Hash128 anchor = hashBytes(gw.canonical());
        if (gw.refsOutstanding() == 0)
            return false;

        // Keys continuously enabled around the cycle must all be
        // taken by it, or an infinite run of this cycle would be
        // unfair (the starved action's obligation never fires).
        std::unordered_set<std::uint64_t> universal, taken;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            std::unordered_set<std::uint64_t> here;
            for (const Action &a : gw.enabledActions())
                here.insert(actionKey(a));
            if (i == 0) {
                universal = std::move(here);
            } else {
                for (auto it = universal.begin();
                     it != universal.end();) {
                    it = here.count(*it) ? std::next(it)
                                         : universal.erase(it);
                }
            }
            taken.insert(actionKey(cycle[i]));
            if (!gw.applyIfEnabled(cycle[i]))
                return false;
        }
        if (!(hashBytes(gw.canonical()) == anchor))
            return false;
        for (std::uint64_t k : universal)
            if (!taken.count(k))
                return false;
        return true;
    } catch (const PanicError &) {
        return false;
    }
}

ExploreResult
checkLiveness(const VerifyConfig &cfg)
{
    SilenceLogging silent;
    ExploreResult res;
    EngineGateway gw(cfg);

    Graph g = buildGraph(gw, cfg);
    res.states = g.nodes.size();
    res.edges = g.edges;
    res.budgetExhausted = !g.complete;

    std::uint32_t sccCount = 0;
    std::vector<std::uint32_t> sccId = tarjanScc(g, sccCount);

    std::vector<std::vector<std::uint32_t>> members(sccCount);
    for (std::uint32_t v = 0;
         v < static_cast<std::uint32_t>(g.nodes.size()); ++v)
        members[sccId[v]].push_back(v);

    // Tarjan emits members in reverse discovery order within each
    // component; examine components by their earliest-discovered
    // state so the reported lasso is deterministic.
    std::vector<std::uint32_t> order(sccCount);
    for (std::uint32_t i = 0; i < sccCount; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&members](std::uint32_t x, std::uint32_t y) {
                  return members[x].back() < members[y].back();
              });

    for (std::uint32_t scc : order) {
        std::vector<std::uint32_t> &ms = members[scc];
        std::sort(ms.begin(), ms.end());

        bool hasInternal = false;
        for (std::uint32_t v : ms) {
            for (const GraphEdge &e : g.nodes[v].edges)
                if (sccId[e.to] == scc)
                    hasInternal = true;
        }
        if (!hasInternal || !g.nodes[ms.front()].refsOut)
            continue;

        // Keys enabled at every member state...
        std::vector<std::uint64_t> universal =
            g.nodes[ms.front()].fairKeys;
        for (std::uint32_t v : ms) {
            std::vector<std::uint64_t> inter;
            std::set_intersection(
                universal.begin(), universal.end(),
                g.nodes[v].fairKeys.begin(),
                g.nodes[v].fairKeys.end(),
                std::back_inserter(inter));
            universal = std::move(inter);
        }
        // ...must each be taken by an internal edge, else every
        // run trapped here is unfair and the SCC proves nothing.
        std::unordered_map<std::uint64_t,
                           std::pair<std::uint32_t, std::uint32_t>>
            covering; // key -> (src node, edge index)
        for (std::uint32_t v : ms) {
            const auto &edges = g.nodes[v].edges;
            for (std::uint32_t e = 0; e < edges.size(); ++e) {
                if (sccId[edges[e].to] != scc)
                    continue;
                covering.emplace(actionKey(edges[e].act),
                                 std::make_pair(v, e));
            }
        }
        bool fair = true;
        for (std::uint64_t k : universal) {
            if (!covering.count(k)) {
                fair = false;
                break;
            }
        }
        if (!fair)
            continue;

        // Accepting cycle found. Lasso: prefix via discovery
        // parents to the earliest member, then a closed internal
        // walk visiting every member and every obligated edge
        // (the walk is itself weakly fair by construction).
        const std::uint32_t anchor = ms.front();
        std::vector<Action> prefix;
        for (std::uint32_t v = anchor; g.nodes[v].parent != kNone;
             v = g.nodes[v].parent)
            prefix.push_back(g.nodes[v].parentAct);
        std::reverse(prefix.begin(), prefix.end());

        std::vector<Action> cycle;
        std::uint32_t cur = anchor;
        auto walkTo = [&](std::uint32_t dst) {
            for (Action &a : sccPath(g, sccId, scc, cur, dst))
                cycle.push_back(std::move(a));
            cur = dst;
        };
        for (std::uint32_t v : ms)
            walkTo(v);
        for (std::uint64_t k : universal) {
            auto [src, e] = covering.at(k);
            walkTo(src);
            cycle.push_back(g.nodes[src].edges[e].act);
            cur = g.nodes[src].edges[e].to;
        }
        walkTo(anchor);
        if (cycle.empty()) { // single state: take its self-loop
            for (const GraphEdge &e : g.nodes[anchor].edges) {
                if (e.to == anchor) {
                    cycle.push_back(e.act);
                    break;
                }
            }
        }

        if (!reproducesLasso(gw, prefix, cycle))
            continue; // construction artifact, not a counterexample

        Violation v;
        v.kind = "livelock";
        v.details.push_back(csprintf(
            "weakly fair cycle of %zu state(s) with %llu "
            "reference(s) outstanding",
            ms.size(),
            static_cast<unsigned long long>(gw.refsOutstanding())));
        v.path = std::move(prefix);
        v.cycle = std::move(cycle);
        res.violations.push_back(std::move(v));
        break;
    }

    res.complete = res.violations.empty() && g.complete;
    return res;
}

Violation
minimizeLasso(const VerifyConfig &cfg, const Violation &v)
{
    SilenceLogging silent;
    EngineGateway gw(cfg);
    Violation out;
    out.kind = v.kind;
    out.details = v.details;
    out.path = v.path;
    out.cycle = v.cycle;

    auto shrink = [](std::vector<Action> &vec, auto &&check) {
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i < vec.size(); ++i) {
                std::vector<Action> cand;
                cand.reserve(vec.size() - 1);
                for (std::size_t j = 0; j < vec.size(); ++j)
                    if (j != i)
                        cand.push_back(vec[j]);
                if (check(cand)) {
                    vec = std::move(cand);
                    changed = true;
                    break;
                }
            }
        }
    };

    shrink(out.path, [&](const std::vector<Action> &cand) {
        return reproducesLasso(gw, cand, out.cycle);
    });
    shrink(out.cycle, [&](const std::vector<Action> &cand) {
        return reproducesLasso(gw, out.path, cand);
    });
    return out;
}

} // namespace mscp::verify
