/**
 * @file
 * Byte-writer and 128-bit hashing helpers for canonical state
 * serializations. Engine access lives entirely in
 * EngineGateway::canonical() (canon.cc); this header is plain
 * utility code.
 */

#ifndef MSCP_VERIFY_CANON_HH
#define MSCP_VERIFY_CANON_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mscp::verify
{

/** Append-only little-endian byte writer. */
class ByteSink
{
  public:
    void u8(std::uint8_t v) { out.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    std::vector<std::uint8_t> take() { return std::move(out); }
    const std::vector<std::uint8_t> &bytes() const { return out; }

  private:
    std::vector<std::uint8_t> out;
};

/**
 * 128-bit digest for the seen-state set: two independent 64-bit
 * halves (FNV-1a and an xorshift-multiply variant), so the set
 * stores 16 bytes per state instead of the full serialization.
 * With a 2^-128 pairwise collision probability, accidental merges
 * are negligible against state budgets in the millions.
 */
struct Hash128
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const Hash128 &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

inline Hash128
hashBytes(const std::vector<std::uint8_t> &bytes)
{
    Hash128 h;
    h.lo = 0xcbf29ce484222325ull;
    h.hi = 0x9e3779b97f4a7c15ull;
    for (std::uint8_t b : bytes) {
        h.lo = (h.lo ^ b) * 0x100000001b3ull;
        h.hi ^= b + 0x9e3779b97f4a7c15ull + (h.hi << 6) +
                (h.hi >> 2);
    }
    return h;
}

struct Hash128Hasher
{
    std::size_t
    operator()(const Hash128 &h) const
    {
        return static_cast<std::size_t>(h.lo ^ (h.hi * 0xff51afd7ed558ccdull));
    }
};

} // namespace mscp::verify

#endif // MSCP_VERIFY_CANON_HH
