/**
 * @file
 * Cross-engine refinement: observable-trace inclusion against a
 * linearizability specification.
 *
 * The engine's built-in monitor (checkReadSample) validates each
 * read sample locally; it cannot catch cross-operation ordering
 * bugs where every individual sample has *some* justification but
 * no single linearization explains the whole run. checkRefinement()
 * closes that gap: it explores the implementation's transition
 * system and checks that every sequence of value-visible events --
 * invoke(cpu, op) when a reference issues, respond(cpu, value) when
 * it completes -- is also a trace of the atomic read/write register
 * specification. Implementation traces \subseteq specification
 * traces is trace refinement; for this spec it is exactly
 * linearizability of the memory operations.
 *
 * The spec side runs as a subset construction (LinSpec): the set of
 * all spec states consistent with the observations so far, advanced
 * by an epsilon-closure over linearization points before each
 * respond. An empty set means no linearization order can explain
 * the observed values -- a refinement violation, reported with the
 * action path that produced it.
 *
 * The harness is generic over a Subject so future engines (e.g. a
 * timestamp-based protocol) plug in by implementing five virtuals;
 * GatewaySubject adapts the controlled-mode gateway. Symmetry
 * reduction is forced off underneath a subject: the spec set is
 * keyed by concrete cpu ids, which role permutation would alias.
 */

#ifndef MSCP_VERIFY_REFINE_HH
#define MSCP_VERIFY_REFINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "verify/state.hh"

namespace mscp::verify
{

/** An engine under refinement checking, as the harness sees it. */
class Subject
{
  public:
    virtual ~Subject() = default;

    /** Rebuild the initial state. */
    virtual void reset() = 0;

    /** Number of cpus issuing operations (spec width). */
    virtual unsigned numCpus() const = 0;

    /** Enabled transitions, deterministic order. */
    virtual std::vector<Action> enabledActions() = 0;

    /** Apply @p a; @return the observable events it emitted, in
     *  order. May throw PanicError. */
    virtual std::vector<ObsEvent> apply(const Action &a) = 0;

    /**
     * Byte identity of the current state for the seen set. Must
     * distinguish states whose *future observable behavior* can
     * differ -- in particular any accepted-but-not-yet-responded
     * read value must be folded in even if the exploration
     * canonicalization omits it.
     */
    virtual std::vector<std::uint8_t> stateBytes() = 0;
};

/** The controlled-mode engine gateway as a refinement subject. */
class GatewaySubject final : public Subject
{
  public:
    explicit GatewaySubject(const VerifyConfig &cfg);
    ~GatewaySubject() override;

    void reset() override;
    unsigned numCpus() const override;
    std::vector<Action> enabledActions() override;
    std::vector<ObsEvent> apply(const Action &a) override;
    std::vector<std::uint8_t> stateBytes() override;

  private:
    std::unique_ptr<EngineGateway> gw;
};

/**
 * Explore @p subj and check observable-trace inclusion in the
 * atomic-register spec. Violations have kind=="refine" (or
 * "panic"); states/edges count (implementation state, spec set)
 * pairs, and complete is false when @p maxStates or @p maxDepth
 * truncated the search.
 */
ExploreResult checkRefinement(Subject &subj,
                              std::uint64_t maxStates,
                              unsigned maxDepth);

/** Convenience: run the gateway subject for @p cfg with the
 *  config's own exploration budgets. */
ExploreResult checkRefinement(const VerifyConfig &cfg);

} // namespace mscp::verify

#endif // MSCP_VERIFY_REFINE_HH
