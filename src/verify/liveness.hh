/**
 * @file
 * Liveness checking: "every issued operation eventually completes"
 * under weak fairness.
 *
 * The safety explorer (explorer.hh) prunes cycles at the seen set
 * without a verdict about progress; a protocol that NACKs forever
 * passes every safety check. checkLiveness() instead materializes
 * the full transition graph (never reduced -- POR's ample sets are
 * not provably cycle-faithful here, and the graph is built once per
 * config), runs Tarjan's SCC algorithm, and hunts for an *accepting
 * cycle*: a nontrivial SCC whose states still have references
 * outstanding and which is consistent with weak fairness.
 *
 * Fairness: an infinite run may only ignore an action that is not
 * continuously enabled. Action identity across states is
 * actionKey() (content fingerprint for Deliver -- the same
 * in-flight message keeps its key until delivered -- and
 * (kind, node) otherwise). An SCC is *fairness-respecting* iff
 * every key enabled at ALL of its states is taken by some edge
 * inside the SCC; a key enabled at every state of a cycle but
 * never taken would make any run looping there unfair, i.e. not a
 * real counterexample. Deliver/Timeout keys carry the interesting
 * obligations (the network eventually delivers, timers eventually
 * fire); Issue/Commit/Retry keys encode scheduler fairness and
 * keep a cycle that merely starves a local step from being
 * misreported as a protocol livelock.
 *
 * A violation is returned as a lasso: Violation::path replays from
 * reset to an anchor state inside the SCC and Violation::cycle is
 * a closed walk back to the anchor that visits every SCC state and
 * every fairness-obligated edge (so the walk itself is weakly
 * fair). Every reported lasso is re-validated by replay
 * (reproducesLasso) before it leaves the checker, and
 * minimizeLasso() delta-debugs prefix and cycle under the same
 * replay check.
 */

#ifndef MSCP_VERIFY_LIVENESS_HH
#define MSCP_VERIFY_LIVENESS_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "verify/state.hh"

namespace mscp::verify
{

/**
 * One slot of the iterative Tarjan DFS stack: the state being
 * expanded and the next outgoing edge to follow. POD with
 * fixed-width members (pinned by tools/lint_pods.py check 8); the
 * stack holds one per open state, so layout is load-bearing on the
 * biggest configs.
 */
struct LivenessFrame
{
    std::uint32_t state = 0;
    std::uint32_t edge = 0;
};

static_assert(sizeof(LivenessFrame) == 8,
              "LivenessFrame layout drifted");
static_assert(std::is_trivially_copyable_v<LivenessFrame>,
              "LivenessFrame must stay trivially copyable");

/**
 * Build the full (unreduced) transition graph and search for a
 * fairness-respecting accepting cycle. On success the result's
 * violations hold one kind=="livelock" Violation with path and
 * cycle filled in; states/edges count the explicit graph and
 * complete is false when cfg.opt.maxStates or maxDepth truncated
 * the build (a truncated graph proves nothing about liveness).
 */
ExploreResult checkLiveness(const VerifyConfig &cfg);

/**
 * Replay @p prefix from reset, then @p cycle, and check the lasso
 * is a genuine weakly fair livelock: every action applies, the
 * cycle returns to the anchor's canonical state, references remain
 * outstanding, and every action key enabled at all states around
 * the cycle is taken by the cycle.
 */
bool reproducesLasso(EngineGateway &gw,
                     const std::vector<Action> &prefix,
                     const std::vector<Action> &cycle);

/**
 * Delta-debug a livelock lasso: single-action removal passes to
 * fixpoint over the prefix and then the cycle, each candidate
 * gated on reproducesLasso(). Explorer::minimize dispatches
 * kind=="livelock" violations here.
 */
Violation minimizeLasso(const VerifyConfig &cfg, const Violation &v);

} // namespace mscp::verify

#endif // MSCP_VERIFY_LIVENESS_HH
