#include "refine.hh"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "sim/logging.hh"
#include "verify/canon.hh"

namespace mscp::verify
{

namespace
{

class SilenceLogging
{
  public:
    SilenceLogging() : saved(logLevel())
    {
        setLogLevel(LogLevel::Silent);
    }
    ~SilenceLogging() { setLogLevel(saved); }

  private:
    LogLevel saved;
};

/**
 * The set of atomic-register spec states consistent with the
 * observations so far (subset construction).
 *
 * A spec state is encoded as one u64 vector:
 *   [m, addr_1, val_1, ..., addr_m, val_m,
 *    phase_0, result_0, ..., phase_{n-1}, result_{n-1}]
 * with the written-address list sorted (unwritten addresses read
 * as 0, matching the engine's zeroed memory), phase 0=idle /
 * 1=invoked / 2=linearized, and result the value a linearized read
 * will return. The per-cpu operation itself (kind, address, write
 * value) is common to every member -- it is fixed by the
 * observation stream -- and lives once, outside the set.
 */
class LinSpec
{
  public:
    explicit LinSpec(unsigned cpus) : n(cpus), ops(cpus)
    {
        std::vector<std::uint64_t> init{0};
        init.resize(1 + 2 * n, 0);
        states.insert(std::move(init));
    }

    /** Advance by one observable event; @return false (and fill
     *  @p err) when no spec state survives. */
    bool step(const ObsEvent &e, std::string &err)
    {
        const unsigned c = e.cpu;
        if (e.invoke) {
            ops[c] = {e.isWrite, e.addr, e.value};
            std::set<std::vector<std::uint64_t>> out;
            for (const auto &s : states) {
                if (phaseOf(s, c) != 0) {
                    err = csprintf(
                        "invoke on cpu%u with an operation "
                        "already in flight", c);
                    return false;
                }
                auto t = s;
                setPhase(t, c, 1, 0);
                out.insert(std::move(t));
            }
            states = std::move(out);
            return true;
        }

        // respond: any pending operation may linearize first, in
        // any order (epsilon-closure), then cpu c's must have
        // linearized with the observed result.
        closure();
        std::set<std::vector<std::uint64_t>> out;
        for (const auto &s : states) {
            if (phaseOf(s, c) != 2)
                continue;
            if (!e.isWrite && resultOf(s, c) != e.value)
                continue;
            auto t = s;
            setPhase(t, c, 0, 0);
            out.insert(std::move(t));
        }
        states = std::move(out);
        if (states.empty()) {
            err = csprintf(
                "%s cpu%u @%llu returned %llu: no linearization "
                "of the concurrent operations explains it",
                e.isWrite ? "write" : "read", c,
                static_cast<unsigned long long>(e.addr),
                static_cast<unsigned long long>(e.value));
            return false;
        }
        return true;
    }

    /** Canonical bytes of the whole set, for the seen key. */
    void appendBytes(std::vector<std::uint8_t> &out) const
    {
        auto put = [&out](std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                out.push_back(
                    static_cast<std::uint8_t>(v >> (8 * i)));
        };
        put(states.size());
        for (const auto &s : states) {
            put(s.size());
            for (std::uint64_t v : s)
                put(v);
        }
    }

  private:
    struct Op
    {
        bool isWrite = false;
        Addr addr = 0;
        std::uint64_t value = 0;
    };

    std::size_t memCount(const std::vector<std::uint64_t> &s) const
    {
        return static_cast<std::size_t>(s[0]);
    }
    std::size_t cpuBase(const std::vector<std::uint64_t> &s,
                        unsigned c) const
    {
        return 1 + 2 * memCount(s) + 2 * c;
    }
    std::uint64_t phaseOf(const std::vector<std::uint64_t> &s,
                          unsigned c) const
    {
        return s[cpuBase(s, c)];
    }
    std::uint64_t resultOf(const std::vector<std::uint64_t> &s,
                           unsigned c) const
    {
        return s[cpuBase(s, c) + 1];
    }
    void setPhase(std::vector<std::uint64_t> &s, unsigned c,
                  std::uint64_t phase, std::uint64_t result) const
    {
        s[cpuBase(s, c)] = phase;
        s[cpuBase(s, c) + 1] = result;
    }
    std::uint64_t readMem(const std::vector<std::uint64_t> &s,
                          Addr a) const
    {
        const std::size_t m = memCount(s);
        for (std::size_t i = 0; i < m; ++i)
            if (s[1 + 2 * i] == a)
                return s[2 + 2 * i];
        return 0;
    }
    void writeMem(std::vector<std::uint64_t> &s, Addr a,
                  std::uint64_t v) const
    {
        const std::size_t m = memCount(s);
        for (std::size_t i = 0; i < m; ++i) {
            if (s[1 + 2 * i] == a) {
                s[2 + 2 * i] = v;
                return;
            }
        }
        // Insert sorted so equal memories encode identically.
        std::size_t i = 0;
        while (i < m && s[1 + 2 * i] < a)
            ++i;
        s.insert(s.begin() + 1 + 2 * i, {a, v});
        ++s[0];
    }

    /** Fixpoint over single linearization steps. */
    void closure()
    {
        std::vector<std::vector<std::uint64_t>> work(
            states.begin(), states.end());
        while (!work.empty()) {
            auto s = std::move(work.back());
            work.pop_back();
            for (unsigned c = 0; c < n; ++c) {
                if (phaseOf(s, c) != 1)
                    continue;
                auto t = s;
                if (ops[c].isWrite) {
                    writeMem(t, ops[c].addr, ops[c].value);
                    setPhase(t, c, 2, 0);
                } else {
                    setPhase(t, c, 2, readMem(t, ops[c].addr));
                }
                if (states.insert(t).second)
                    work.push_back(std::move(t));
            }
        }
    }

    unsigned n;
    std::vector<Op> ops; ///< in-flight op per cpu
    std::set<std::vector<std::uint64_t>> states;
};

} // anonymous namespace

GatewaySubject::GatewaySubject(const VerifyConfig &cfg)
{
    VerifyConfig c = cfg;
    c.opt.symmetry = false; // spec set is keyed by concrete cpus
    gw = std::make_unique<EngineGateway>(c);
}

GatewaySubject::~GatewaySubject() = default;

void
GatewaySubject::reset()
{
    gw->reset();
}

unsigned
GatewaySubject::numCpus() const
{
    return gw->config().nodes;
}

std::vector<Action>
GatewaySubject::enabledActions()
{
    return gw->enabledActions();
}

std::vector<ObsEvent>
GatewaySubject::apply(const Action &a)
{
    gw->apply(a);
    return gw->takeObservations();
}

std::vector<std::uint8_t>
GatewaySubject::stateBytes()
{
    std::vector<std::uint8_t> b = gw->canonical();
    for (std::uint64_t s : gw->pendingSamples())
        for (int i = 0; i < 8; ++i)
            b.push_back(static_cast<std::uint8_t>(s >> (8 * i)));
    return b;
}

ExploreResult
checkRefinement(Subject &subj, std::uint64_t maxStates,
                unsigned maxDepth)
{
    SilenceLogging silent;
    ExploreResult res;

    struct Frame
    {
        std::vector<Action> acts;
        std::size_t next = 0;
    };

    std::unordered_set<Hash128, Hash128Hasher> seen;
    std::vector<Frame> frames;
    std::vector<Action> path;
    bool dirty = false;

    subj.reset();
    LinSpec spec(subj.numCpus());
    std::string err;

    auto key = [&subj](const LinSpec &sp) {
        std::vector<std::uint8_t> b = subj.stateBytes();
        sp.appendBytes(b);
        return hashBytes(b);
    };

    seen.insert(key(spec));
    res.states = 1;
    frames.push_back({subj.enabledActions(), 0});

    auto fail = [&](std::string kind, std::string detail) {
        Violation v;
        v.kind = std::move(kind);
        v.details.push_back(std::move(detail));
        v.path = path;
        res.violations.push_back(std::move(v));
    };

    while (!frames.empty()) {
        Frame &f = frames.back();
        if (f.next >= f.acts.size()) {
            frames.pop_back();
            if (!path.empty()) {
                path.pop_back();
                dirty = true;
            }
            continue;
        }
        const Action a = f.acts[f.next++];

        if (dirty) {
            subj.reset();
            spec = LinSpec(subj.numCpus());
            for (const Action &p : path)
                for (const ObsEvent &e : subj.apply(p))
                    spec.step(e, err); // replays a validated path
            dirty = false;
        }

        std::vector<ObsEvent> events;
        bool panicked = false;
        try {
            events = subj.apply(a);
        } catch (const PanicError &pe) {
            panicked = true;
            err = pe.message;
        }
        ++res.edges;
        path.push_back(a);
        res.maxDepthReached = std::max(
            res.maxDepthReached,
            static_cast<unsigned>(path.size()));
        if (panicked) {
            fail("panic", err);
            return res;
        }
        bool violated = false;
        for (const ObsEvent &e : events) {
            if (!spec.step(e, err)) {
                violated = true;
                break;
            }
        }
        if (violated) {
            fail("refine", err);
            return res;
        }

        if (!seen.insert(key(spec)).second) {
            ++res.prunedSeen;
            path.pop_back();
            dirty = true;
            continue;
        }
        ++res.states;
        if (res.states >= maxStates) {
            res.budgetExhausted = true;
            break;
        }
        if (path.size() >= maxDepth) {
            ++res.prunedDepth;
            path.pop_back();
            dirty = true;
            continue;
        }
        frames.push_back({subj.enabledActions(), 0});
    }

    res.complete = res.violations.empty() && !res.budgetExhausted &&
                   res.prunedDepth == 0;
    return res;
}

ExploreResult
checkRefinement(const VerifyConfig &cfg)
{
    GatewaySubject subj(cfg);
    return checkRefinement(subj, cfg.opt.maxStates,
                           cfg.opt.maxDepth);
}

} // namespace mscp::verify
