/**
 * @file
 * Explicit-state DFS explorer, counterexample minimizer, and
 * counterexample renderers for the model checker.
 */

#ifndef MSCP_VERIFY_EXPLORER_HH
#define MSCP_VERIFY_EXPLORER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "verify/state.hh"

namespace mscp::verify
{

/**
 * Depth-first exploration of the configuration's transition
 * system.
 *
 * The engine is non-copyable, so the explorer keeps exactly one
 * and restores states by deterministic replay of the action prefix
 * from a fresh reset. The seen-state set stores 128-bit hashes of
 * the canonical serialization; a revisited state prunes the
 * branch. Deadlocks (no enabled action with references
 * outstanding) are reported as violations.
 *
 * explore() checks *safety* only: a cycle of states revisits and
 * stops without a verdict about progress. Livelock detection --
 * "every issued operation eventually completes" under weak
 * fairness on Deliver/Timeout -- is the liveness checker's job
 * (liveness.hh), which rebuilds the full graph and analyzes its
 * SCCs; its counterexamples flow through the same minimizer and
 * renderers as safety violations.
 *
 * With VerifyOptions::por set, exploration is reduced by ample
 * clusters (with the standard cycle proviso) and sleep sets over
 * the independence relation in por.hh; verify_sweep's audit mode
 * cross-checks reduced against full runs per config.
 *
 * After every action the explorer checks for value errors and
 * engine panics; the full I1..I10 invariant suite additionally
 * runs at every *settled* state (no pending work anywhere -- the
 * suite's quiescence precondition). Exploration stops at the first
 * violation.
 */
class Explorer
{
  public:
    explicit Explorer(const VerifyConfig &cfg);

    /** Explore; stops at the first violation or when exhausted. */
    ExploreResult explore();

    /**
     * Delta-debug a violation down to a locally minimal one:
     * single-action removal passes to fixpoint, then a commutation
     * normal form (adjacent swaps toward a canonical action order,
     * each gated on still reproducing) so independent schedules of
     * the same fault -- e.g. a POR and a full run -- minimize to
     * the same counterexample. Livelock lassos minimize prefix and
     * cycle separately (liveness.hh).
     */
    Violation minimize(const Violation &v);

    /**
     * Deterministic text rendering (stable across runs, thread
     * counts and hosts: no ticks, no pointers, no hashes), used
     * for golden-file comparison. @p minimized is the result of
     * minimize(v) (pass @p v itself to render unminimized).
     */
    static std::string renderViolation(const VerifyConfig &cfg,
                                       const Violation &v,
                                       const Violation &minimized);

    /**
     * Replay @p path on a trace-enabled engine and export the
     * recording as Chrome trace_event JSON (Perfetto-loadable).
     * Each action boundary is marked with a VerifyAction instant.
     * For a lasso, pass prefix+cycle concatenated. No-op output
     * (an empty JSON array) when tracing is compiled out.
     */
    static void exportTrace(const VerifyConfig &cfg,
                            const std::vector<Action> &path,
                            std::ostream &os);

  private:
    /** Violation kind tag: invariant id before the first ':'. */
    static std::string kindOf(const std::string &err);

    /**
     * Replay @p actions on @p gw; @return true when a violation of
     * kind @p kind occurs at any point and every action applies.
     */
    bool reproduces(EngineGateway &gw,
                    const std::vector<Action> &actions,
                    const std::string &kind);

    /** Commutation normal form of a minimal path (see minimize). */
    void normalizeTrace(EngineGateway &gw, std::vector<Action> &cur,
                        const std::string &kind);

    VerifyConfig cfg;
};

} // namespace mscp::verify

#endif // MSCP_VERIFY_EXPLORER_HH
