/**
 * @file
 * Explicit-state DFS explorer, counterexample minimizer, and
 * counterexample renderers for the model checker.
 */

#ifndef MSCP_VERIFY_EXPLORER_HH
#define MSCP_VERIFY_EXPLORER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "verify/state.hh"

namespace mscp::verify
{

/**
 * Depth-first exploration of the configuration's transition
 * system.
 *
 * The engine is non-copyable, so the explorer keeps exactly one
 * and restores states by deterministic replay of the action prefix
 * from a fresh reset. The seen-state set stores 128-bit hashes of
 * the canonical serialization; a revisited state prunes the
 * branch. Livelocks are therefore *pruned*, not detected: a cycle
 * of states revisits and stops. Deadlocks (no enabled action with
 * references outstanding) are reported as violations.
 *
 * After every action the explorer checks for value errors and
 * engine panics; the full I1..I10 invariant suite additionally
 * runs at every *settled* state (no pending work anywhere -- the
 * suite's quiescence precondition). Exploration stops at the first
 * violation.
 */
class Explorer
{
  public:
    explicit Explorer(const VerifyConfig &cfg);

    /** Explore; stops at the first violation or when exhausted. */
    ExploreResult explore();

    /**
     * Delta-debug a violating path down to a locally minimal one:
     * single-action removal passes to fixpoint. A candidate is
     * accepted when every remaining action replays feasibly and a
     * violation of the same kind occurs at any point.
     */
    std::vector<Action> minimize(const Violation &v);

    /**
     * Deterministic text rendering (stable across runs, thread
     * counts and hosts: no ticks, no pointers, no hashes), used
     * for golden-file comparison.
     */
    static std::string renderViolation(const VerifyConfig &cfg,
                                       const Violation &v,
                                       const std::vector<Action> &
                                           minimized);

    /**
     * Replay @p path on a trace-enabled engine and export the
     * recording as Chrome trace_event JSON (Perfetto-loadable).
     * Each action boundary is marked with a VerifyAction instant.
     * No-op output (an empty JSON array) when tracing is compiled
     * out.
     */
    static void exportTrace(const VerifyConfig &cfg,
                            const std::vector<Action> &path,
                            std::ostream &os);

  private:
    /** Violation kind tag: invariant id before the first ':'. */
    static std::string kindOf(const std::string &err);

    /**
     * Replay @p actions on @p gw; @return true when a violation of
     * kind @p kind occurs at any point and every action applies.
     */
    bool reproduces(EngineGateway &gw,
                    const std::vector<Action> &actions,
                    const std::string &kind);

    VerifyConfig cfg;
};

} // namespace mscp::verify

#endif // MSCP_VERIFY_EXPLORER_HH
