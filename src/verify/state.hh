/**
 * @file
 * Model-checker gateway: the concurrent engine as a guarded-action
 * transition system.
 *
 * The explorer never runs the engine's event loop. Instead the
 * engine is constructed in *controlled mode* (vControlled), where
 * every source of nondeterminism is lifted into an explicit Action
 * the explorer chooses:
 *
 *  - Issue      a cpu starts its next queued reference;
 *  - Commit     a scheduled completion (hit latency window) fires;
 *  - Retry      a deferred access (clearPending / all-ways-pinned
 *               backoff loop) re-runs;
 *  - Timeout    an armed retry timer fires;
 *  - Deliver    one buffered message is delivered -- by default only
 *               per-sender-stream FIFO heads are eligible (see
 *               VerifyOptions::fifoChannels);
 *  - Crash      a cache controller dies (budgeted);
 *  - Rejoin     a dead node cold-restarts;
 *  - Sweep      a dead node's stabilization sweep runs at the homes.
 *
 * Engines are deliberately non-copyable (the event queue holds
 * inline callbacks), so "restore" is replay: the explorer rebuilds
 * any state by resetting the gateway and re-applying the action
 * prefix that reached it. Determinism makes replay exact. The
 * canonical byte serialization (canon.cc) exists only for the
 * seen-state set and for symmetry reduction -- it is never
 * deserialized.
 */

#ifndef MSCP_VERIFY_STATE_HH
#define MSCP_VERIFY_STATE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/omega_network.hh"
#include "proto/concurrent.hh"
#include "verify/por.hh"
#include "workload/ref_stream.hh"

namespace mscp::verify
{

/** The kinds of transition the explorer can take. */
enum class ActionKind : std::uint8_t
{
    Issue,
    Commit,
    Retry,
    Timeout,
    Deliver,
    Sweep,
    Rejoin,
    Crash,
};

/** Printable action-kind name. */
const char *actionKindName(ActionKind k);

/**
 * One enabled transition. For Deliver, @c index addresses the
 * pending buffer at enumeration time and @c fp fingerprints the
 * message content so a replay on a rebuilt engine (whose buffer
 * order may differ after minimization) can re-locate it. The
 * remaining fields describe the message for counterexample output.
 */
struct Action
{
    ActionKind kind = ActionKind::Issue;
    NodeId node = 0;         ///< cpu / crashed node (non-Deliver)
    std::uint32_t index = 0; ///< Deliver: pending-buffer position
    std::uint64_t fp = 0;    ///< Deliver: content fingerprint
    std::uint8_t msgType = 0;
    NodeId src = 0;
    NodeId dst = 0;
    bool srcIsMem = false;
    bool toMemory = false;
    std::uint64_t blk = 0;
    std::uint64_t seq = 0;
};

/** Exploration budgets and reductions. */
struct VerifyOptions
{
    /**
     * Deliver only the head of each (src, src-role, dst, dst-role)
     * stream. The real network is FIFO per physical port pair; the
     * per-role-stream relaxation explored here is a strict superset
     * of those orderings (sound: no real behavior is missed) and,
     * unlike port-pair FIFO, is equivariant under the cache-role
     * node permutations symmetry reduction applies. false explores
     * every permutation of the pending buffer.
     */
    bool fifoChannels = true;
    /**
     * Canonicalize states up to permutation of cache roles (home
     * roles are fixed by the block interleaving). Automatically
     * disabled when the configuration can evict (see
     * EngineGateway::symmetryEligible).
     */
    bool symmetry = true;
    /** Unique-state budget; exploration stops expanding beyond it. */
    std::uint64_t maxStates = 1u << 20;
    /** Action-depth bound per path. */
    unsigned maxDepth = 4096;
    /** Crash actions allowed per path (0 = no crash exploration). */
    unsigned crashBudget = 0;
    /** Whether crashed nodes may cold-restart (Rejoin actions). */
    bool allowRejoin = false;
    /** Retry-timer base; > 0 arms (virtual) timers and enables
     *  Timeout actions. */
    Tick timeoutBase = 0;
    unsigned maxRetries = 1;
    /**
     * Partial-order reduction (por.hh): ample clusters with the
     * cycle proviso plus sleep sets. Heuristic over a hand-derived
     * independence relation -- verify_sweep's audit mode re-checks
     * it against full exploration per config.
     */
    bool por = false;
    /**
     * Suppress buffering a controlled-mode send whose exact content
     * is already pending. Timeout resends and suspicion rounds
     * re-send verbatim copies whose delivery every handler absorbs
     * as a duplicate; folding them bounds the otherwise unbounded
     * retry-storm frontier so crash configs become exhaustible.
     * A modeling reduction like fifoChannels: explored behaviors
     * are a subset of the unrestricted interleavings.
     */
    bool dedupResends = false;
};

/** One model-checking configuration. */
struct VerifyConfig
{
    std::string name = "cfg";
    /** Network ports (power of two >= 2); also cpu/home count. */
    unsigned nodes = 2;
    cache::Geometry geometry{1, 1, 1};
    cache::Mode mode = cache::Mode::DistributedWrite;
    /** program[cpu] = that cpu's in-order references. */
    std::vector<std::vector<workload::MemRef>> program;
    VerifyOptions opt;

    /** Block-id universe touched by the programs: max block + 1. */
    std::uint64_t numBlocks() const;
};

/** A property violation plus the action path that reaches it. */
struct Violation
{
    /** "I1".."I10", "NQ", "value", "deadlock", "panic" or
     *  "livelock". */
    std::string kind;
    std::vector<std::string> details;
    std::vector<Action> path;
    /**
     * Livelock lasso cycle: replaying @c path reaches the cycle's
     * anchor state, replaying @c cycle returns to it with
     * references still outstanding and weak fairness respected.
     * Empty for safety violations.
     */
    std::vector<Action> cycle;
};

/** Exploration outcome and coverage statistics. */
struct ExploreResult
{
    std::uint64_t states = 0;      ///< unique canonical states
    std::uint64_t edges = 0;       ///< actions applied
    std::uint64_t prunedSeen = 0;  ///< revisits cut by the seen set
    std::uint64_t prunedDepth = 0; ///< paths cut by maxDepth
    std::uint64_t settledStates = 0; ///< invariant-checked states
    /** Distinct settled canonical states (coverage identity). */
    std::uint64_t settledUnique = 0;
    /** Order-independent digest over the distinct settled states;
     *  the POR audit asserts full and reduced runs agree. */
    std::uint64_t settledDigest = 0;
    unsigned maxDepthReached = 0;
    bool budgetExhausted = false;  ///< maxStates hit
    /** Exhaustive: no violation, no budget/depth truncation. */
    bool complete = false;
    std::vector<Violation> violations; ///< first violation found
};

/**
 * One value-visible event of the implementation: a program
 * reference starting (invoke) or finishing (respond). The
 * refinement harness (refine.hh) checks the sequence of these
 * against the linearizability specification.
 */
struct ObsEvent
{
    NodeId cpu = 0;
    bool invoke = false;  ///< invocation vs response
    bool isWrite = false;
    Addr addr = 0;
    /** Write: the value written (known at invoke). Read: the value
     *  the reference returned (respond only). */
    std::uint64_t value = 0;
};

/**
 * Owns one controlled engine and translates between explorer
 * actions and engine internals (it is the engine's only friend).
 */
class EngineGateway
{
  public:
    /** @param with_trace record engine events for counterexample
     *  replay/export (off during exploration). */
    explicit EngineGateway(const VerifyConfig &cfg,
                           bool with_trace = false);
    ~EngineGateway();

    /** Rebuild the engine in its initial state. */
    void reset();

    /** Enabled transitions, in a fixed deterministic order. */
    std::vector<Action> enabledActions() const;

    /**
     * Apply an enabled action. Engine panics surface as PanicError
     * (logging is switched to throwing around the dispatch).
     */
    void apply(const Action &a);

    /**
     * Replay helper: apply @p a if it is still enabled, matching
     * Deliver actions by fingerprint instead of buffer index.
     * @return false when the action is infeasible in this state.
     */
    bool applyIfEnabled(const Action &a);

    /**
     * Whether the system has no work in flight: all references
     * done or lost, nothing pending in the buffer, no sweeps
     * outstanding and no home busy periods. The invariant suite is
     * meaningful exactly here.
     */
    bool settled() const;

    std::uint64_t refsOutstanding() const;
    std::uint64_t valueErrors() const;

    /** Run the I1..I10 suite over the current (settled) state. */
    std::vector<std::string> checkInvariants() const;

    /**
     * Canonical byte serialization of the current state (canon.cc):
     * absolute ticks dropped, per-space sequence/token/stamp values
     * rank-renumbered, LRU clocks reduced to per-set ranks, pending
     * messages grouped per stream, and (when enabled and eligible)
     * the minimum over all cache-role permutations.
     */
    std::vector<std::uint8_t> canonical() const;

    /**
     * Whether cache-role symmetry reduction is sound for this
     * configuration. Candidate lists for ownership hand-offs are
     * materialized in ascending node-id order, which is not
     * permutation-equivariant; the reduction is therefore only
     * applied when no program can overflow a cache set (no
     * evictions => no hand-offs). Larger configs explore with
     * symmetry off.
     */
    bool symmetryEligible() const { return symEligible; }

    /** Record a VerifyAction instant in the engine's tracer (used
     *  by counterexample replays to mark action boundaries). */
    void markAction(const Action &a, std::uint64_t step);

    /**
     * Static independence footprint of an enabled action (por.hh):
     * the component it executes at, plus the monitor block it may
     * sample or update. Must be called in the state the action was
     * enumerated in (Issue inspects the queue head).
     */
    ActionFootprint footprint(const Action &a) const;

    /** Drain the observable events the last apply() emitted
     *  (controlled-mode invoke/respond log). */
    std::vector<ObsEvent> takeObservations();

    /**
     * Auxiliary observable state the canonical serialization omits:
     * the pending read-sample per active read (the value a respond
     * will carry). The refinement harness folds this into its seen
     * key so states differing only in an accepted-but-uncommitted
     * read value stay distinct.
     */
    std::vector<std::uint64_t> pendingSamples() const;

    const VerifyConfig &config() const { return cfg; }
    const Tracer &tracer() const;
    const proto::ConcurrentProtocol &engine() const { return *eng; }

  private:
    using Engine = proto::ConcurrentProtocol;
    using Msg = Engine::Msg;

    void buildEngine();
    /** Advance virtual time by one tick (one sentinel event), so
     *  durable-write stamps and LRU updates of successive actions
     *  stay causally ordered. */
    void advance();
    void applyUnchecked(const Action &a);
    bool enabledNonDeliver(const Action &a) const;
    /** Whether pending entry @p i is the head of its stream. */
    bool isStreamHead(std::size_t i) const;
    /**
     * Whether pending entry @p i may be delivered now: the head of
     * its stream under FIFO, and -- for RecoveryAck -- not before
     * every in-flight message a dead cache sent has drained. The
     * latter encodes the engine's stabilization assumption
     * (DESIGN.md 5f): with uniform network latency, any post-crash
     * purge/ack round trip strictly outlasts the dead node's
     * pre-crash residual traffic, so a reconstruction can never
     * complete while e.g. the victim's last DurableWrite is still
     * in the air. An untimed model must impose that ordering
     * explicitly or it reports unreachable stale-read artifacts.
     */
    bool deliverEligible(std::size_t i) const;
    /** Any pending message sent by a now-dead cache role. */
    bool deadSrcPending(NodeId n = invalidNode) const;
    static std::uint64_t fingerprint(const Msg &m, bool src_is_mem);
    static Action describeDeliver(const Msg &m, bool src_is_mem,
                                  std::uint32_t index);

    VerifyConfig cfg;
    bool withTrace = false;
    bool symEligible = false;
    std::uint64_t nBlocks = 0;
    std::unique_ptr<net::OmegaNetwork> net;
    std::unique_ptr<Engine> eng;
    std::uint64_t actionsApplied = 0;
};

} // namespace mscp::verify

#endif // MSCP_VERIFY_STATE_HH
