/**
 * @file
 * The message-level concurrent engine in action: the same shared
 * workload runs with genuinely overlapping transactions, and the
 * report shows what concurrency adds - queueing at the home
 * modules, NACKed owner-pointer bypasses, hand-offs under load -
 * while the linearizability monitor guarantees the values stay
 * correct.
 *
 *   ./concurrent_demo [ports] [tasks] [writeFraction]
 */

#include <cstdio>
#include <cstdlib>

#include "net/omega_network.hh"
#include "proto/concurrent.hh"
#include "workload/patterns.hh"
#include "workload/placement.hh"
#include "workload/shared_block.hh"

using namespace mscp;

int
main(int argc, char **argv)
{
    unsigned ports = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1])) : 32;
    unsigned tasks = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
    double wfrac = argc > 3 ? std::atof(argv[3]) : 0.3;

    net::OmegaNetwork net(ports);
    proto::ConcurrentParams params;
    params.geometry = cache::Geometry{4, 8, 2};
    params.defaultMode = cache::Mode::DistributedWrite;
    proto::ConcurrentProtocol engine(net, params);

    // Phase 1: the paper's one-writer-per-block model. Ownership
    // settles on the writers and never moves afterwards.
    workload::SharedBlockParams wp;
    wp.placement = workload::adjacentPlacement(tasks);
    wp.writeFraction = wfrac;
    wp.numBlocks = 4;
    wp.blockWords = 4;
    wp.baseAddr = static_cast<Addr>(ports - 4) * 4;
    wp.numRefs = 8000;
    workload::SharedBlockWorkload stream(wp);

    std::printf("concurrent two-mode protocol: N=%u ports, %u "
                "tasks, w=%.2f, %llu + 2000 refs\n\n", ports,
                tasks, wfrac,
                static_cast<unsigned long long>(wp.numRefs));

    auto res = engine.run(stream);

    // Phase 2: a hot-spot block every task writes - the expensive
    // case the paper's Sec. 5 warns about ("for applications where
    // several tasks can modify a block ... ownership will change").
    workload::HotSpotParams hp;
    hp.placement = workload::adjacentPlacement(tasks);
    hp.writeFraction = 0.5;
    hp.blockWords = 4;
    hp.baseAddr = static_cast<Addr>(ports - 5) * 4;
    hp.numRefs = 2000;
    workload::HotSpotWorkload hot(hp);
    auto res2 = engine.run(hot);
    res.makespan += res2.makespan;
    res.networkBits += res2.networkBits;
    res.valueErrors += res2.valueErrors;
    const auto &c = engine.counters();

    std::printf("completed in %llu ticks; %llu value errors\n",
                static_cast<unsigned long long>(res.makespan),
                static_cast<unsigned long long>(res.valueErrors));
    std::printf("avg latency: reads %.1f ticks, writes %.1f "
                "ticks\n", res.avgReadLatency,
                res.avgWriteLatency);
    std::printf("network: %llu bits (the paper's CC metric)\n\n",
                static_cast<unsigned long long>(res.networkBits));

    std::printf("what concurrency added:\n");
    std::printf("  transactions queued at busy homes: %llu\n",
                static_cast<unsigned long long>(c.homeQueued));
    std::printf("  owner-pointer bypasses: %llu (%llu raced and "
                "were NACKed)\n",
                static_cast<unsigned long long>(c.pointerReads),
                static_cast<unsigned long long>(c.pointerNacks));
    std::printf("  ownership transfers: %llu, hand-offs on "
                "eviction: %llu (nacks: %llu)\n",
                static_cast<unsigned long long>(
                    c.ownershipTransfers),
                static_cast<unsigned long long>(c.handoffs),
                static_cast<unsigned long long>(c.handoffNacks));
    std::printf("  distributed-write update multicasts: %llu "
                "(each acknowledged by every copy)\n",
                static_cast<unsigned long long>(c.dwUpdates));
    std::printf("  forwards that met requester==owner (request "
                "overtaken by a hand-off): %llu\n",
                static_cast<unsigned long long>(c.selfForwards));
    return res.valueErrors ? 1 : 0;
}
