/**
 * @file
 * Interactive explorer for the Sec. 3 multicast schemes: pick a
 * network size, message size and destination pattern on the
 * command line and see the cost of every scheme, the per-stage
 * traffic breakdown (eq. 1's L_i), the oracle choice and the
 * Sec. 5 break-even registers' choice.
 *
 *   ./multicast_explorer [N] [M] [pattern] [n] [n1]
 *
 *   pattern: strided | cluster | random    (default: cluster)
 *   N: ports (default 1024)   M: payload bits (default 20)
 *   n: destinations (default 16)  n1: cluster size (default 128)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/scheme_select.hh"
#include "net/omega_network.hh"
#include "sim/random.hh"

using namespace mscp;

int
main(int argc, char **argv)
{
    unsigned num_ports = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1])) : 1024;
    Bits message = argc > 2
        ? static_cast<Bits>(std::atoll(argv[2])) : 20;
    std::string pattern = argc > 3 ? argv[3] : "cluster";
    unsigned n = argc > 4
        ? static_cast<unsigned>(std::atoi(argv[4])) : 16;
    unsigned n1 = argc > 5
        ? static_cast<unsigned>(std::atoi(argv[5])) : 128;

    if (!isPowerOfTwo(num_ports) || n == 0 || n > num_ports) {
        std::fprintf(stderr, "usage: %s [N pow2] [M] "
                     "[strided|cluster|random] [n] [n1]\n",
                     argv[0]);
        return 1;
    }

    std::vector<NodeId> dests;
    if (pattern == "strided") {
        for (unsigned j = 0; j < n; ++j)
            dests.push_back(j * (num_ports / n));
    } else if (pattern == "random") {
        Random rng(1234);
        auto s = rng.sampleWithoutReplacement(num_ports, n);
        dests.assign(s.begin(), s.end());
    } else {
        for (unsigned j = 0; j < n; ++j)
            dests.push_back(j * (n1 / n < 1 ? 1 : n1 / n));
    }

    net::OmegaNetwork net(num_ports);
    std::printf("omega network: N=%u ports, %u stages, pattern=%s, "
                "n=%u destinations, M=%llu bits\n\n",
                num_ports, net.numStages(), pattern.c_str(), n,
                static_cast<unsigned long long>(message));

    auto costs = net.evaluateAllSchemes(0, dests, message);
    for (const auto &r : costs) {
        std::printf("%-22s total CC = %8llu bits",
                    net::schemeName(r.used),
                    static_cast<unsigned long long>(r.totalBits));
        if (r.overshoot)
            std::printf("  (+%u overshoot deliveries)",
                        r.overshoot);
        std::printf("\n  per-stage L_i:");
        for (auto b : r.bitsPerLevel)
            std::printf(" %llu", static_cast<unsigned long long>(b));
        std::printf("\n");
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < costs.size(); ++i)
        if (costs[i].totalBits < costs[best].totalBits)
            best = i;
    std::printf("\noracle (combined scheme, eq. 8): %s\n",
                net::schemeName(costs[best].used));

    if (isPowerOfTwo(n1) && n1 <= num_ports) {
        auto regs = core::SchemeRegisters::compute(num_ports, n1,
                                                   message);
        std::printf("Sec. 5 registers for n1=%u: break-even "
                    "1->2 at n=%llu, 2->3 at n=%llu; they pick: "
                    "%s\n", n1,
                    static_cast<unsigned long long>(
                        regs.breakEven12),
                    static_cast<unsigned long long>(
                        regs.breakEven23),
                    net::schemeName(regs.choose(n)));
    }
    return 0;
}
