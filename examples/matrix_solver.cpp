/**
 * @file
 * A real parallel computation on the simulated machine: Jacobi
 * relaxation of a 1-D heat equation where every array element lives
 * in the coherent shared memory and every access goes through the
 * protocol.
 *
 * This is the paper's motivating application class ("algorithms
 * based on matrix operations" where each block is modified by at
 * most one task): the interior of each task's partition never
 * migrates, only the boundary elements are shared, and ownership
 * settles after the first sweep.
 *
 * The example checks the parallel result against a sequential
 * solve, then compares the network traffic of the two operating
 * modes.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/system.hh"

namespace
{

using namespace mscp;

constexpr unsigned tasks = 4;
constexpr unsigned cells = 64;     // grid points
constexpr unsigned sweeps = 50;
constexpr double leftBc = 0.0;     // boundary conditions
constexpr double rightBc = 100.0;

/** Fixed-point encoding so values travel as 64-bit words. */
std::uint64_t
encode(double v)
{
    return static_cast<std::uint64_t>(llround(v * 1e6));
}

double
decode(std::uint64_t bits)
{
    return static_cast<double>(bits) / 1e6;
}

/** Sequential reference solution. */
std::vector<double>
solveSequential()
{
    std::vector<double> t(cells, 0.0), next(cells, 0.0);
    t.front() = leftBc;
    t.back() = rightBc;
    for (unsigned s = 0; s < sweeps; ++s) {
        next = t;
        for (unsigned i = 1; i + 1 < cells; ++i)
            next[i] = 0.5 * (t[i - 1] + t[i + 1]);
        t.swap(next);
    }
    return t;
}

/**
 * Parallel Jacobi through the coherence protocol. Two arrays (t and
 * next) live in shared memory; each task owns a contiguous slice.
 *
 * @return total network bits moved
 */
Bits
solveParallel(core::PolicyKind policy,
              std::vector<double> &result)
{
    core::SystemConfig cfg;
    cfg.numPorts = 8;
    cfg.geometry = cache::Geometry{4, 16, 2};
    cfg.policy = policy;
    core::System sys(cfg);
    auto &p = sys.protocol();

    // Issue accesses through the protocol, letting the configured
    // mode policy observe every reference (what System::run does
    // for generated workloads).
    auto rd = [&](NodeId cpu, Addr a) {
        std::uint64_t v = p.read(cpu, a);
        sys.policy().afterRef(p, {cpu, a, false, 0});
        return v;
    };
    auto wr = [&](NodeId cpu, Addr a, std::uint64_t v) {
        p.write(cpu, a, v);
        sys.policy().afterRef(p, {cpu, a, true, v});
    };

    const Addr t_base = 0;
    const Addr next_base = cells;
    const unsigned slice = cells / tasks;

    // Initialize (each task writes its own slice = first touch).
    for (unsigned task = 0; task < tasks; ++task) {
        for (unsigned i = task * slice; i < (task + 1) * slice;
             ++i) {
            double v = (i == 0) ? leftBc
                : (i == cells - 1) ? rightBc : 0.0;
            wr(task, t_base + i, encode(v));
            wr(task, next_base + i, encode(v));
        }
    }

    for (unsigned s = 0; s < sweeps; ++s) {
        Addr src = (s % 2 == 0) ? t_base : next_base;
        Addr dst = (s % 2 == 0) ? next_base : t_base;
        // Each task updates its interior cells, reading neighbour
        // values (boundary reads cross into other tasks' slices).
        for (unsigned task = 0; task < tasks; ++task) {
            for (unsigned i = task * slice;
                 i < (task + 1) * slice; ++i) {
                if (i == 0 || i == cells - 1) {
                    wr(task, dst + i, rd(task, src + i));
                    continue;
                }
                double l = decode(rd(task, src + i - 1));
                double r = decode(rd(task, src + i + 1));
                wr(task, dst + i, encode(0.5 * (l + r)));
            }
        }
    }

    Addr final_base = (sweeps % 2 == 0) ? t_base : next_base;
    result.resize(cells);
    for (unsigned i = 0; i < cells; ++i)
        result[i] = decode(rd(0, final_base + i));

    if (p.valueErrors())
        std::printf("!! coherence violation detected\n");
    return sys.network().linkStats().totalBits();
}

} // anonymous namespace

int
main()
{
    auto ref = solveSequential();

    std::printf("1-D Jacobi heat solve: %u cells, %u tasks, %u "
                "sweeps, boundary %.0f..%.0f\n\n",
                cells, tasks, sweeps, leftBc, rightBc);
    std::printf("%-28s %16s %12s\n", "mode policy", "network bits",
                "max error");

    struct Run { const char *name; mscp::core::PolicyKind kind; };
    for (auto [name, kind] : {
             Run{"global read (default)",
                 mscp::core::PolicyKind::EngineDefault},
             Run{"distributed write",
                 mscp::core::PolicyKind::ForceDW},
             Run{"adaptive (Sec. 5)",
                 mscp::core::PolicyKind::Adaptive}}) {
        std::vector<double> got;
        auto bits = solveParallel(kind, got);
        double err = 0;
        for (unsigned i = 0; i < cells; ++i)
            err = std::max(err, std::fabs(got[i] - ref[i]));
        std::printf("%-28s %16llu %12.2e\n", name,
                    static_cast<unsigned long long>(bits), err);
    }

    std::printf("\nEvery mode computes the same answer; they only "
                "differ in traffic. Here global\nread wins: each "
                "shared boundary block is rewritten wholesale "
                "every sweep (high\nper-block w) while the "
                "neighbour task reads just one word of it, so "
                "fetching the\ndatum beats multicasting every "
                "write - and the adaptive policy discovers that\n"
                "on its own from the reference counters.\n");
    return 0;
}
