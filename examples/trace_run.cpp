/**
 * @file
 * Trace-driven simulator front end: replay a reference trace file
 * through the two-mode protocol and dump the full statistics view,
 * including the per-message-type breakdown and per-stage link
 * traffic.
 *
 *   ./trace_run <trace-file> [ports] [policy]
 *
 *   trace format:  <cpu> R <addr>  |  <cpu> W <addr> <value>
 *   policy: default | dw | gr | adaptive   (default: adaptive)
 *
 * With no arguments, runs a built-in demonstration trace.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/stats_bridge.hh"
#include "core/system.hh"
#include "workload/trace.hh"

using namespace mscp;

int
main(int argc, char **argv)
{
    std::vector<workload::MemRef> refs;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open trace file " << argv[1]
                      << "\n";
            return 1;
        }
        refs = workload::readTrace(in);
    } else {
        std::istringstream demo(
            "# demo: two producers, two consumers\n"
            "0 W 100 1\n1 R 100\n2 R 100\n3 R 100\n"
            "0 W 100 2\n1 R 100\n2 R 100\n"
            "3 W 108 7\n0 R 108\n1 R 108\n"
            "0 W 100 3\n3 R 100\n");
        refs = workload::readTrace(demo);
        std::cout << "(no trace given: running the built-in demo "
                     "trace; usage: " << argv[0]
                  << " <trace> [ports] [policy])\n\n";
    }

    core::SystemConfig cfg;
    cfg.numPorts = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
    cfg.geometry = cache::Geometry{4, 16, 2};
    std::string policy = argc > 3 ? argv[3] : "adaptive";
    if (policy == "dw")
        cfg.policy = core::PolicyKind::ForceDW;
    else if (policy == "gr")
        cfg.policy = core::PolicyKind::ForceGR;
    else if (policy == "default")
        cfg.policy = core::PolicyKind::EngineDefault;
    else
        cfg.policy = core::PolicyKind::Adaptive;

    core::System sys(cfg);
    core::StatsBridge bridge(sys);

    workload::TracePlayer player(refs, argc > 1 ? argv[1] : "demo");
    auto res = sys.run(player);

    std::cout << "replayed " << res.refs << " references ("
              << res.reads << " reads, " << res.writes
              << " writes), " << res.valueErrors
              << " value errors\n\n";

    sys.report(std::cout);
    std::cout << "\nmessage breakdown:\n";
    core::dumpMessageTable(std::cout,
                           sys.protocol().messageCounters());
    std::cout << "\nstatistics:\n";
    bridge.dump(std::cout);
    return res.valueErrors ? 2 : 0;
}
