/**
 * @file
 * Quickstart: build a multiprocessor, run a shared workload, read
 * the statistics.
 *
 * The library's entry point is core::System: an N-port omega
 * network of processor-memory elements, each with a private cache
 * kept consistent by the two-mode protocol (Stenstrom, ISCA 1989).
 *
 *   ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "core/system.hh"
#include "workload/placement.hh"
#include "workload/shared_block.hh"

int
main()
{
    using namespace mscp;

    // 1. Describe the machine: 16 ports, 4-word blocks, 8 sets x
    //    2 ways per cache, combined multicast (eq. 8), adaptive
    //    per-block mode selection (Sec. 5).
    core::SystemConfig cfg;
    cfg.numPorts = 16;
    cfg.geometry = cache::Geometry{4, 8, 2};
    cfg.multicastScheme = net::Scheme::Combined;
    cfg.policy = core::PolicyKind::Adaptive;
    cfg.adaptWindow = 16;

    core::System sys(cfg);

    // 2. Issue individual accesses through the protocol...
    auto &proto = sys.protocol();
    proto.write(0, 100, 42);             // cpu 0 writes word 100
    std::uint64_t v = proto.read(3, 100); // cpu 3 reads it back
    std::printf("cpu 3 read %llu (expected 42)\n",
                static_cast<unsigned long long>(v));

    // ...or set a block's consistency mode explicitly:
    proto.setMode(0, 100, cache::Mode::DistributedWrite);
    proto.write(0, 100, 43); // now multicast to the copies
    std::printf("cpu 3 reads %llu after a distributed write "
                "(local hit)\n",
                static_cast<unsigned long long>(proto.read(3,
                                                           100)));

    // 3. Or drive a whole synthetic workload: 4 tasks share one
    //    block, 20%% of references are writes (the paper's Markov
    //    reference model).
    workload::SharedBlockParams wp;
    wp.placement = workload::adjacentPlacement(4);
    wp.writeFraction = 0.2;
    wp.numBlocks = 1;
    wp.blockWords = 4;
    wp.baseAddr = 15 * 4; // home the block on port 15 (remote)
    wp.numRefs = 5000;
    workload::SharedBlockWorkload stream(wp);

    auto res = sys.run(stream);

    std::printf("\nran %llu refs: %llu network bits, %llu protocol "
                "messages, %llu value errors\n",
                static_cast<unsigned long long>(res.refs),
                static_cast<unsigned long long>(res.networkBits),
                static_cast<unsigned long long>(res.messages),
                static_cast<unsigned long long>(res.valueErrors));

    // 4. The system report shows the protocol event counters and
    //    the per-stage link traffic (the paper's CC metric).
    std::printf("\n");
    sys.report(std::cout);
    return 0;
}
