/**
 * @file
 * Watch the Sec. 5 adaptive policy follow a phase-changing
 * workload: the same shared block is read-mostly in one phase and
 * write-heavy in the next, and the per-block mode flips with it.
 *
 * Also demonstrates the counter mechanism directly: the policy
 * estimates w from a reference window, reads n off the owner's
 * present-flag vector, and compares against w1 = 2/(n+2).
 */

#include <cstdio>

#include "analytic/protocol_cost.hh"
#include "core/system.hh"
#include "workload/placement.hh"
#include "workload/shared_block.hh"

using namespace mscp;

namespace
{

void
phase(core::System &sys, const char *label, double write_fraction,
      std::uint64_t refs, std::uint64_t seed)
{
    workload::SharedBlockParams p;
    p.placement = workload::adjacentPlacement(8);
    p.writeFraction = write_fraction;
    p.numBlocks = 1;
    p.blockWords = 4;
    p.baseAddr = 15 * 4;
    p.numRefs = refs;
    p.seed = seed;
    workload::SharedBlockWorkload w(p);

    Bits before = sys.network().linkStats().totalBits();
    auto res = sys.run(w);
    Bits bits = sys.network().linkStats().totalBits() - before;

    cache::Mode mode;
    bool cached = sys.protocol().blockMode(p.baseAddr, mode);
    unsigned sharers = sys.protocol().presentCount(p.baseAddr);
    double w1 = analytic::wThreshold(sharers);

    std::printf("%-22s w=%.2f  ->  mode=%-17s sharers=%u "
                "(w1=%.2f)  %8.1f bits/ref  switches so far=%llu\n",
                label, write_fraction,
                cached ? cache::modeName(mode) : "uncached",
                sharers, w1,
                static_cast<double>(bits) /
                    static_cast<double>(res.refs),
                static_cast<unsigned long long>(
                    sys.policy().switchesIssued()));
}

} // anonymous namespace

int
main()
{
    core::SystemConfig cfg;
    cfg.numPorts = 16;
    cfg.geometry = cache::Geometry{4, 8, 2};
    cfg.policy = core::PolicyKind::Adaptive;
    cfg.adaptWindow = 16;
    core::System sys(cfg);

    std::printf("phase-changing sharing on one block, 8 tasks, "
                "adaptive window %llu refs\n\n",
                static_cast<unsigned long long>(cfg.adaptWindow));

    phase(sys, "read-mostly phase", 0.03, 4000, 1);
    phase(sys, "write-heavy phase", 0.80, 4000, 2);
    phase(sys, "read-mostly again", 0.03, 4000, 3);
    phase(sys, "mixed phase", 0.30, 4000, 4);

    std::printf("\nThe block's mode tracks each phase: distributed "
                "write while w <= w1, global read\nwhile w > w1, "
                "exactly the two counters + threshold mechanism "
                "of the paper's Sec. 5.\n");
    return 0;
}
