#!/usr/bin/env python3
"""Layout and tracing-discipline lint (CI: pod-lint job).

Grep-based structural checks over src/ that guard the contracts the
hot paths rely on but the compiler only partially enforces:

 1. TraceRecord stays a packed, fixed-width POD: every member uses a
    fixed-size type and the 32-byte static_assert is present. The
    trace ring's zero-allocation claim and the Chrome exporter's
    math both assume this layout.

 2. Tracer::record() compiles to nothing under MSCP_TRACE_DISABLED:
    the body must be inside an '#ifndef MSCP_TRACE_DISABLED' region
    so the trace-off build's benches stay byte-identical for free.

 3. Tracer record call sites stay guarded: 'tracer->record(' must
    sit under an 'if (tracer' null check (the tracer pointer is the
    opt-in), and direct '_tracer.record(' calls are allowed only
    inside the engine's trace() wrapper, which stamps the current
    tick exactly once. Everything else must route through trace().

 4. Msg keeps its fixed scalar layout plus exactly one dynamic
    member (the block-payload vector): the message-arena recycler
    and the model checker's canonical serializer both enumerate its
    fields explicitly and must be updated in lockstep with any new
    member -- flag the drift here, not in a debugger.

 5. LatencySink stays an InlineCallback alias and InlineFunction's
    trivially-copyable / trivially-destructible static_asserts
    remain: latency sampling runs inside the event loop and must
    never allocate.

 6. MailboxSlot stays a fixed-width trivially-copyable POD sized to
    exactly one 64-byte cache line: PDES cross-shard sends memcpy
    slots between threads, and the ring's no-false-sharing claim
    depends on the cache-line size. Both static_asserts must stay.

 7. The metrics hot-path PODs keep their frozen layouts: MetricId
    stays a packed 8-byte handle and MetricWindowHeader a packed
    32-byte ring header, every member fixed-width, with the size
    and trivially-copyable static_asserts present. The sampler ring
    memcpys headers and the JSONL/Perfetto exporters do stride math
    on these layouts.

 8. The model checker's hot PODs keep their frozen layouts:
    ActionFootprint (verify/por.hh) stays a packed 24-byte
    fixed-width struct -- the explorer stores one per frame slot
    and per sleep-set entry, so the independence test is a pure
    bit-ops inline -- and LivenessFrame (verify/liveness.hh) stays
    an 8-byte pair so the iterative Tarjan stack holds millions of
    frames without blowing memory on the widest configs. Size and
    trivially-copyable static_asserts must stay in both headers.

Run from the repo root:  python3 tools/lint_pods.py
Exit status 0 iff every check passes; findings go to stderr.
'--selftest' additionally feeds checks 7 and 8 deliberately
corrupted structs and fails unless the lint flags them (guards the
guard).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

errors = []


def fail(path, line, msg):
    errors.append(f"{path.relative_to(ROOT)}:{line}: {msg}")


def extract_struct(text, name):
    """Return (body, first_line_number) of 'struct <name> { ... }'."""
    m = re.search(r"struct\s+" + name + r"\s*\n?\s*\{", text)
    if not m:
        return None, 0
    depth = 0
    start = text.index("{", m.start())
    for i in range(start, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                body = text[start + 1:i]
                line = text.count("\n", 0, start) + 1
                return body, line
    return None, 0


def member_lines(body):
    """Yield (offset, type, rest) for each 'Type name...;' line."""
    for off, raw in enumerate(body.splitlines()):
        line = raw.split("//")[0].split("///")[0].strip()
        m = re.match(
            r"([A-Za-z_][\w:<>,\s]*?)\s+([A-Za-z_]\w*)\s*"
            r"(\[\d+\])?\s*(=[^;]*)?;",
            line)
        if m:
            yield off, m.group(1).strip(), m.group(2)


def check_trace_record():
    path = SRC / "sim" / "trace.hh"
    text = path.read_text()
    body, line = extract_struct(text, "TraceRecord")
    if body is None:
        fail(path, 1, "struct TraceRecord not found")
        return
    fixed = {"Tick", "std::uint64_t", "std::uint32_t",
             "std::uint16_t", "std::uint8_t"}
    for off, mtype, name in member_lines(body):
        if mtype not in fixed:
            fail(path, line + off,
                 f"TraceRecord member '{name}' has non-fixed-width "
                 f"type '{mtype}' (32-byte POD contract)")
    if not re.search(r"static_assert\(sizeof\(TraceRecord\)\s*==\s*32",
                     text):
        fail(path, line, "missing sizeof(TraceRecord) == 32 "
                         "static_assert")

    rec = text.find("record(TraceEvent kind")
    if rec < 0:
        fail(path, 1, "Tracer::record() not found")
    else:
        window = text[rec:rec + 600]
        if "#ifndef MSCP_TRACE_DISABLED" not in window:
            fail(path, text.count("\n", 0, rec) + 1,
                 "Tracer::record() body is not compiled out under "
                 "MSCP_TRACE_DISABLED")


def check_record_call_sites():
    for path in sorted(SRC.rglob("*.cc")) + sorted(SRC.rglob("*.hh")):
        lines = path.read_text().splitlines()
        for i, raw in enumerate(lines):
            code = raw.split("//")[0]
            if "tracer->record(" in code:
                ctx = "\n".join(lines[max(0, i - 6):i + 1])
                if "if (tracer" not in ctx:
                    fail(path, i + 1,
                         "tracer->record() without an 'if (tracer' "
                         "guard in the preceding lines")
            if "_tracer.record(" in code:
                if path != SRC / "sim" / "trace.hh":
                    ctx = "\n".join(lines[max(0, i - 10):i + 1])
                    if "void trace(TraceEvent" not in ctx:
                        fail(path, i + 1,
                             "_tracer.record() outside the trace() "
                             "wrapper; route tracing through trace()")


def check_msg():
    path = SRC / "proto" / "concurrent.hh"
    text = path.read_text()
    body, line = extract_struct(text, "Msg")
    if body is None:
        fail(path, 1, "struct Msg not found")
        return
    scalar = {"MsgType", "NodeId", "bool", "BlockId", "unsigned",
              "std::uint64_t", "std::uint32_t", "cache::StateField"}
    dynamic = []
    for off, mtype, name in member_lines(body):
        if mtype.startswith("std::vector"):
            dynamic.append((off, mtype, name))
        elif mtype not in scalar:
            fail(path, line + off,
                 f"Msg member '{name}' has unexpected type "
                 f"'{mtype}'; the arena recycler and the verify "
                 f"serializer enumerate Msg fields explicitly")
    if len(dynamic) != 1 or dynamic[0][2] != "data":
        fail(path, line,
             f"Msg must have exactly one dynamic member "
             f"(std::vector data), found "
             f"{[d[2] for d in dynamic]}")


def check_latency_sink():
    path = SRC / "proto" / "concurrent.hh"
    if not re.search(r"using\s+LatencySink\s*=\s*InlineCallback<",
                     path.read_text()):
        fail(path, 1, "LatencySink is no longer an InlineCallback "
                      "alias (zero-allocation sampling contract)")
    inl = SRC / "sim" / "inline_function.hh"
    text = inl.read_text()
    for trait in ("is_trivially_copyable_v",
                  "is_trivially_destructible_v"):
        if trait not in text:
            fail(inl, 1, f"InlineFunction lost its {trait} "
                         f"static_assert")


def check_mailbox_slot():
    path = SRC / "sim" / "pdes.hh"
    text = path.read_text()
    body, line = extract_struct(text, "MailboxSlot")
    if body is None:
        fail(path, 1, "struct MailboxSlot not found")
        return
    fixed = {"Tick", "std::uint64_t", "std::uint32_t",
             "std::uint16_t", "std::uint8_t"}
    for off, mtype, name in member_lines(body):
        if mtype not in fixed:
            fail(path, line + off,
                 f"MailboxSlot member '{name}' has non-fixed-width "
                 f"type '{mtype}' (cross-thread memcpy contract)")
    if not re.search(r"static_assert\(sizeof\(MailboxSlot\)\s*==\s*64",
                     text):
        fail(path, line, "missing sizeof(MailboxSlot) == 64 "
                         "static_assert (one cache line)")
    if not re.search(
            r"static_assert\("
            r"std::is_trivially_copyable_v<MailboxSlot>", text):
        fail(path, line, "missing is_trivially_copyable_v"
                         "<MailboxSlot> static_assert")


METRIC_PODS = (
    ("MetricId", 8, {"std::uint32_t", "std::uint16_t"}),
    ("MetricWindowHeader", 32, {"std::uint64_t"}),
)


def check_metric_pods(text=None):
    path = SRC / "sim" / "metrics.hh"
    if text is None:
        text = path.read_text()
    for name, size, fixed in METRIC_PODS:
        body, line = extract_struct(text, name)
        if body is None:
            fail(path, 1, f"struct {name} not found")
            continue
        for off, mtype, member in member_lines(body):
            if mtype not in fixed:
                fail(path, line + off,
                     f"{name} member '{member}' has non-fixed-width "
                     f"type '{mtype}' ({size}-byte POD contract)")
        if not re.search(r"static_assert\(sizeof\(" + name +
                         r"\)\s*==\s*" + str(size), text):
            fail(path, line,
                 f"missing sizeof({name}) == {size} static_assert")
        if not re.search(r"static_assert\(\s*std::"
                         r"is_trivially_copyable_v<" + name + ">",
                         text):
            fail(path, line, f"missing is_trivially_copyable_v"
                             f"<{name}> static_assert")


VERIFY_PODS = (
    ("por.hh", "ActionFootprint", 24,
     {"std::uint64_t", "std::uint32_t", "std::uint8_t"}),
    ("liveness.hh", "LivenessFrame", 8, {"std::uint32_t"}),
)


def check_verify_pods(texts=None):
    for fname, name, size, fixed in VERIFY_PODS:
        path = SRC / "verify" / fname
        text = texts[name] if texts else path.read_text()
        body, line = extract_struct(text, name)
        if body is None:
            fail(path, 1, f"struct {name} not found")
            continue
        for off, mtype, member in member_lines(body):
            if mtype not in fixed:
                fail(path, line + off,
                     f"{name} member '{member}' has non-fixed-width "
                     f"type '{mtype}' ({size}-byte POD contract)")
        if not re.search(r"static_assert\(sizeof\(" + name +
                         r"\)\s*==\s*" + str(size), text):
            fail(path, line,
                 f"missing sizeof({name}) == {size} static_assert")
        if not re.search(r"static_assert\(\s*std::"
                         r"is_trivially_copyable_v<" + name + ">",
                         text):
            fail(path, line, f"missing is_trivially_copyable_v"
                             f"<{name}> static_assert")


# Deliberately broken metrics PODs for --selftest: a non-fixed-width
# member, a dynamic member and no static_asserts. Check 7 must flag
# every struct here or the lint has gone blind.
SELFTEST_BAD = """
struct MetricId
{
    std::size_t slot = 0;
    std::uint16_t cols = 1;
};

struct MetricWindowHeader
{
    std::uint64_t window;
    std::string label;
};
"""


# Deliberately broken verify PODs for --selftest: a size_t member,
# a dynamic member and no static_asserts. Check 8 must flag every
# struct here or the lint has gone blind.
SELFTEST_BAD_VERIFY = {
    "ActionFootprint": """
struct ActionFootprint
{
    std::size_t comps = 0;
    std::uint8_t global = 0;
};
""",
    "LivenessFrame": """
struct LivenessFrame
{
    std::uint32_t state = 0;
    std::vector<std::uint32_t> edges;
};
""",
}


def selftest():
    check_metric_pods()
    check_verify_pods()
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print("lint_pods --selftest: repo sources must pass "
              "checks 7 and 8 first", file=sys.stderr)
        return 1
    check_metric_pods(text=SELFTEST_BAD)
    check_verify_pods(texts=SELFTEST_BAD_VERIFY)
    flagged = list(errors)
    errors.clear()
    wanted = ["'slot'", "'label'", "sizeof(MetricId)",
              "sizeof(MetricWindowHeader)",
              "is_trivially_copyable_v<MetricId>",
              "'comps'", "'edges'", "sizeof(ActionFootprint)",
              "sizeof(LivenessFrame)",
              "is_trivially_copyable_v<ActionFootprint>",
              "is_trivially_copyable_v<LivenessFrame>"]
    missing = [w for w in wanted
               if not any(w in e for e in flagged)]
    if missing:
        for e in flagged:
            print(e, file=sys.stderr)
        print(f"lint_pods --selftest: corrupted input not fully "
              f"flagged, missing findings about {missing}",
              file=sys.stderr)
        return 1
    print(f"lint_pods --selftest: checks 7 and 8 flagged all "
          f"{len(flagged)} planted defects")
    return 0


def main():
    if "--selftest" in sys.argv[1:]:
        return selftest()
    check_trace_record()
    check_record_call_sites()
    check_msg()
    check_latency_sink()
    check_mailbox_slot()
    check_metric_pods()
    check_verify_pods()
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"lint_pods: {len(errors)} finding(s)", file=sys.stderr)
        return 1
    print("lint_pods: all layout and tracing checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
