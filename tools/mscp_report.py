#!/usr/bin/env python3
"""Terminal reporter for MSCP windowed-metrics JSON Lines.

Reads the file(s) written through $MSCP_METRICS_OUT (one JSON object
per window; schema in src/core/bench_json.hh) and prints, per
(source, label) run:

 - a per-window table of the scalar series (counters are already
   per-window deltas at export time, gauges are levels);
 - an ASCII heatmap per grid series -- rows are grid rows (network
   stages), columns are time windows, shade scaled to the hottest
   cell -- the stage x port contention picture at terminal width;
 - warm-up / steady-state detection: a mean-shift scan over sliding
   windows of the signal series reports where the run settles, so
   summary statistics can exclude the cold start.

Stdlib only; no third-party dependencies.

Usage:
  python3 tools/mscp_report.py metrics.jsonl [more.jsonl ...]
      [--source concurrent] [--label fault_soak/all]
      [--series name ...] [--signal name] [--width 64]
"""

import argparse
import json
import sys

SHADES = " .:-=+*#%@"


def load_runs(paths):
    """Parse files into {(source, label): [window records]}."""
    runs = {}
    for path in paths:
        with open(path) as f:
            for ln, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{path}:{ln}: bad JSON line: {e}",
                          file=sys.stderr)
                    continue
                if "metrics" not in rec or "series" not in rec:
                    continue
                key = (rec["metrics"], rec.get("label", ""))
                runs.setdefault(key, []).append(rec)
    for recs in runs.values():
        recs.sort(key=lambda r: r["window"])
    return runs


def classify(series):
    """Split one window's series dict by JSON shape: scalars,
    histograms (flat arrays) and grids (nested arrays)."""
    scalars, hists, grids = [], [], []
    for name, v in series.items():
        if isinstance(v, list):
            if v and isinstance(v[0], list):
                grids.append(name)
            else:
                hists.append(name)
        else:
            scalars.append(name)
    return scalars, hists, grids


def downsample(values, width):
    """Group values into <= width buckets (summing each bucket);
    returns (bucketed values, windows per bucket)."""
    stride = max(1, -(-len(values) // width))
    out = [sum(values[i:i + stride])
           for i in range(0, len(values), stride)]
    return out, stride


def print_table(recs, names, width):
    if not names:
        return
    rows, stride = downsample(list(range(len(recs))), width)
    stride = max(1, -(-len(recs) // min(width, 24)))
    print(f"  per-window series (every {stride} window(s)):")
    head = f"  {'window':>8} {'end_tick':>10}"
    for n in names:
        head += f" {n[-14:]:>14}"
    print(head)
    for i in range(0, len(recs), stride):
        r = recs[i]
        line = f"  {r['window']:>8} {r['end_tick']:>10}"
        for n in names:
            v = r["series"].get(n, 0)
            if isinstance(v, float):
                line += f" {v:>14.1f}"
            else:
                line += f" {v:>14}"
        print(line)


def heatmap(recs, name, width):
    """ASCII heatmap of grid series @name: one character row per
    grid row, one column per (bucketed) time window."""
    grids = [r["series"].get(name) for r in recs]
    grids = [g for g in grids if g is not None]
    if not grids:
        return
    nrows = len(grids[0])
    per_row = [[sum(g[r]) for g in grids] for r in range(nrows)]
    bucketed = [downsample(row, width)[0] for row in per_row]
    peak = max((max(row) for row in bucketed), default=0)
    print(f"  {name} heatmap (rows = grid row / stage, "
          f"cols = time ->, peak cell {peak}):")
    for r, row in enumerate(bucketed):
        chars = "".join(
            SHADES[min(len(SHADES) - 1,
                       (v * (len(SHADES) - 1) + peak - 1) // peak)]
            if peak else SHADES[0]
            for v in row)
        print(f"    row {r:>2} |{chars}|")


def steady_state(recs, signal):
    """Mean-shift scan over sliding windows: the steady state is
    the longest contiguous stretch whose sliding means stay within
    20% (or one absolute unit) of the median sliding mean -- robust
    to both a cold-start ramp and an end-of-run drain. Returns
    (first_index, last_index, mean) or None if no stretch covers at
    least a third of the run."""
    values = [float(r["series"].get(signal, 0)) for r in recs]
    n = len(values)
    if n < 4:
        return None
    k = max(2, n // 8)
    means = [sum(values[i:i + k]) / k for i in range(n - k + 1)]
    target = sorted(means)[len(means) // 2]
    tol = max(abs(target) * 0.2, 1.0)

    best = cur = None
    for i, m in enumerate(means):
        if abs(m - target) <= tol:
            cur = (cur[0], i) if cur else (i, i)
            if not best or cur[1] - cur[0] > best[1] - best[0]:
                best = cur
        else:
            cur = None
    if not best:
        return None
    first, last = best[0], best[1] + k - 1
    if last - first + 1 < n // 3:
        return None
    mean = sum(values[first:last + 1]) / (last - first + 1)
    return first, last, mean


def report(key, recs, args):
    source, label = key
    span = recs[-1]["end_tick"] - recs[0]["end_tick"]
    w = span // (recs[-1]["window"] - recs[0]["window"]) \
        if recs[-1]["window"] > recs[0]["window"] else 0
    print(f"== {source} / {label}: {len(recs)} windows, "
          f"~{w} ticks each, ends at tick {recs[-1]['end_tick']} ==")
    scalars, hists, grids = classify(recs[-1]["series"])

    names = args.series or scalars[:6]
    print_table(recs, [n for n in names if n in scalars],
                args.width)

    for g in grids:
        if args.series and g not in args.series:
            continue
        heatmap(recs, g, args.width)

    signal = args.signal
    if not signal:
        for cand in ("proto.refs_done", "pt.refs"):
            if cand in scalars:
                signal = cand
                break
        else:
            signal = scalars[0] if scalars else None
    if signal:
        ss = steady_state(recs, signal)
        if ss is None:
            print(f"  steady state: not reached "
                  f"(signal {signal} keeps shifting)")
        else:
            first, last, mean = ss
            print(f"  steady state: windows "
                  f"{recs[first]['window']}..{recs[last]['window']} "
                  f"(warm-up {first} window(s), "
                  f"{len(recs) - 1 - last} trailing); "
                  f"{signal} mean {mean:.1f}/window")
    print()


def main():
    ap = argparse.ArgumentParser(
        description="Report on MSCP windowed-metrics JSON Lines")
    ap.add_argument("files", nargs="+",
                    help="JSON Lines files from $MSCP_METRICS_OUT")
    ap.add_argument("--source", help="only this engine source")
    ap.add_argument("--label", help="only this run label")
    ap.add_argument("--series", nargs="*",
                    help="only these series in tables/heatmaps")
    ap.add_argument("--signal",
                    help="series driving steady-state detection")
    ap.add_argument("--width", type=int, default=64,
                    help="max table rows / heatmap columns")
    args = ap.parse_args()

    runs = load_runs(args.files)
    shown = 0
    for key in sorted(runs):
        if args.source and key[0] != args.source:
            continue
        if args.label and key[1] != args.label:
            continue
        report(key, runs[key], args)
        shown += 1
    if not shown:
        print("no matching metrics records found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
