#!/usr/bin/env python3
"""Gate the model-checker sweep's coverage against a checked-in baseline.

``bench/verify_sweep`` writes a per-config coverage record (state
counts, exhaustion, audit/liveness/refinement verdicts) to the path in
``$MSCP_VERIFY_COVERAGE_OUT``.  This script diffs that record against
``tests/verify/sweep_baseline.json`` and fails on any regression:

* a config present in the baseline but missing from the run,
* a config that was exhausted (``complete``) and no longer is,
* a clean verdict (``audit_ok`` / ``liveness_clean`` / ``refine_clean``
  / ``violations``) that went bad,
* any drift in the state counts (``states_full`` / ``states_por`` /
  ``settled_unique``) -- exploration is deterministic, so a count change
  means the protocol engine or the checker changed and the baseline
  must be re-recorded on purpose.

Intentional changes are recorded with ``--update``, which rewrites the
baseline from the current run; commit the result.  New configs absent
from the baseline also require ``--update`` (the gate must know about
every row it protects).

Usage:
    check_verify_coverage.py CURRENT.json [--baseline PATH] [--update]

Exit status: 0 clean, 1 regression (or unrecorded config), 2 usage.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "verify", "sweep_baseline.json")

# Fields where only one direction is a regression (1 -> 0).  Counts are
# compared exactly; see the module docstring.
BOOL_FIELDS = ("complete", "audit_ok", "liveness_clean", "refine_clean")
COUNT_FIELDS = ("states_full", "states_por", "settled_unique")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    configs = doc.get("configs")
    if not isinstance(configs, dict) or not configs:
        raise ValueError(f"{path}: no 'configs' object")
    return configs


def compare(base, cur):
    """Return a list of human-readable regression strings."""
    problems = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            problems.append(f"{name}: missing from current sweep")
            continue
        if c.get("violations", 0) and not b.get("violations", 0):
            problems.append(f"{name}: violations appeared")
        for f in BOOL_FIELDS:
            if b.get(f, 0) and not c.get(f, 0):
                problems.append(f"{name}: {f} regressed 1 -> 0")
        for f in COUNT_FIELDS:
            if b.get(f) != c.get(f):
                problems.append(
                    f"{name}: {f} drifted {b.get(f)} -> {c.get(f)} "
                    "(re-record with --update if intentional)")
    for name in sorted(set(cur) - set(base)):
        problems.append(
            f"{name}: not in baseline (record it with --update)")
    return problems


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="coverage JSON written by the sweep")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current run")
    args = ap.parse_args(argv)

    cur = load(args.current)

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump({"configs": cur}, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline rewritten: {args.baseline} "
              f"({len(cur)} configs)")
        return 0

    base = load(args.baseline)
    problems = compare(base, cur)
    if problems:
        print("verify-coverage regressions:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"verify coverage OK: {len(base)} configs, "
          "no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
